(* A minimal blocking HTTP/1.0-style GET over raw Unix sockets — just
   enough for `tpan top --attach` to pull /statusz and /tracez from a
   running server (and for smoke tests to poke one) without an HTTP
   library in the toolchain. *)

type url = { host : string; port : int; path : string }

let parse_url s =
  let strip prefix s =
    if String.length s >= String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  match strip "http://" s with
  | None -> Error (Printf.sprintf "unsupported URL %S (expected http://host:port/path)" s)
  | Some rest ->
    let authority, path =
      match String.index_opt rest '/' with
      | Some i ->
        (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "/")
    in
    let host, port =
      match String.rindex_opt authority ':' with
      | Some i -> (
        let h = String.sub authority 0 i in
        let p = String.sub authority (i + 1) (String.length authority - i - 1) in
        match int_of_string_opt p with
        | Some p when p > 0 && p < 65536 -> (h, Some p)
        | _ -> (authority, None))
      | None -> (authority, Some 80)
    in
    (match port with
    | None -> Error (Printf.sprintf "bad port in URL %S" s)
    | Some port ->
      let host = if host = "" then "127.0.0.1" else host in
      Ok { host; port; path })

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> Ok addr
    | _ | (exception Not_found) -> Error (Printf.sprintf "cannot resolve host %S" host))

let read_all ?(limit = 64 * 1024 * 1024) fd =
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      if Buffer.length buf > limit then failwith "response too large" else go ()
    end
  in
  go ();
  Buffer.contents buf

let split_response raw =
  match String.index_opt raw '\r' with
  | None -> Error "malformed HTTP response (no status line)"
  | Some _ -> (
    let header_end =
      let rec find i =
        if i + 3 >= String.length raw then None
        else if
          raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
          && raw.[i + 3] = '\n'
        then Some i
        else find (i + 1)
      in
      find 0
    in
    match header_end with
    | None -> Error "malformed HTTP response (no header terminator)"
    | Some i -> (
      let head = String.sub raw 0 i in
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      let status_line =
        match String.index_opt head '\r' with
        | Some j -> String.sub head 0 j
        | None -> head
      in
      match String.split_on_char ' ' status_line with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some status -> Ok (status, body)
        | None -> Error ("malformed HTTP status " ^ code))
      | _ -> Error "malformed HTTP status line"))

let get ?(timeout = 5.0) url =
  match parse_url url with
  | Error e -> Error e
  | Ok { host; port; path } -> (
    match resolve host with
    | Error e -> Error e
    | Ok addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
            Unix.connect fd (Unix.ADDR_INET (addr, port));
            let req =
              Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
                path host port
            in
            let b = Bytes.of_string req in
            let rec send off =
              if off < Bytes.length b then
                send (off + Unix.write fd b off (Bytes.length b - off))
            in
            send 0;
            split_response (read_all fd)
          with
          | Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))
          | Failure m -> Error m)))
