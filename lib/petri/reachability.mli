(** Explicit-state reachability for untimed nets: the classic analysis the
    paper builds on ("reachability graphs ... used extensively to prove
    properties related to correctness such as deadlock-freeness"). *)

type graph = {
  net : Net.t;
  states : Marking.t array;          (** index 0 is the initial marking *)
  edges : (Net.trans * int) list array;  (** outgoing [(transition, target)] *)
}

exception State_limit of int
(** Raised when exploration exceeds the state budget: the net may be
    unbounded (use {!Coverability}) or just large. *)

val explore : ?max_states:int -> ?on_progress:(int -> unit) -> Net.t -> graph
(** Breadth-first enumeration of the reachable markings under atomic
    (untimed) firing. [max_states] defaults to 100_000. [on_progress] is
    called with the running state count after each fresh marking is
    interned (throttle with {!Tpan_obs.Progress.every}). *)

val num_states : graph -> int
val num_edges : graph -> int

val deadlocks : graph -> int list
(** Indices of dead markings. *)

val is_deadlock_free : graph -> bool

val place_bound : graph -> Net.place -> int
(** Max token count observed over all reachable markings. *)

val is_safe : graph -> bool
(** 1-bounded in every reachable marking. *)

val live_transitions : graph -> Net.trans list
(** Transitions that are enabled in at least one reachable marking (L1-live). *)

val find_marking : graph -> Marking.t -> int option

val path_to : graph -> (Marking.t -> bool) -> Net.trans list option
(** A shortest firing sequence from the initial marking to a marking
    satisfying the predicate. *)

val explore_result :
  ?max_states:int -> ?on_progress:(int -> unit) -> Net.t ->
  (graph, [ `State_limit of int ]) result
(** Like {!explore} but returns the budget overflow as a value instead of
    raising. (The unified error type lives one layer up, in
    [Tpan_core.Error]; this polymorphic variant keeps the petri layer
    self-contained.) *)
