(** Karp–Miller coverability analysis.

    Decides boundedness even when the reachability set is infinite, by
    accelerating strictly-growing loops into ω components. Used to vet nets
    before timed analysis: the paper's conflict-set machinery assumes
    "firing a transition disables all conflicting transitions", which we
    check on bounded (in practice safe) nets. *)

type omega_marking = int array
(** Token counts with [omega] (unbounded) encoded as [max_int]. *)

val omega : int

type tree = {
  net : Net.t;
  nodes : omega_marking array;
  children : (Net.trans * int) list array;
}

val build : ?max_nodes:int -> ?on_progress:(int -> unit) -> Net.t -> tree
(** [on_progress] is called with the running node count after each node
    is added (throttle with {!Tpan_obs.Progress.every}).
    @raise Reachability.State_limit if the tree exceeds [max_nodes]
    (default 100_000). *)

val is_bounded : tree -> bool
(** No ω appears anywhere. *)

val place_bound : tree -> Net.place -> int option
(** [None] if the place is unbounded, otherwise an upper bound on its token
    count (exact for bounded nets: coverability = reachability there). *)

val unbounded_places : tree -> Net.place list

val coverable : tree -> int array -> bool
(** Can a marking ≥ the given vector be covered? *)

val pp_omega_marking : Net.t -> Format.formatter -> omega_marking -> unit
