type graph = {
  net : Net.t;
  states : Marking.t array;
  edges : (Net.trans * int) list array;
}

exception State_limit of int

module MT = Hashtbl.Make (struct
  type t = Marking.t

  let equal = Marking.equal
  let hash = Marking.hash
end)

let m_states = Tpan_obs.Metrics.counter "petri.reachability.states"

let explore ?(max_states = 100_000) ?(on_progress = fun _ -> ()) net =
  let index = MT.create 1024 in
  let states = ref [] in
  let count = ref 0 in
  let intern m =
    match MT.find_opt index m with
    | Some i -> (i, false)
    | None ->
      if !count >= max_states then raise (State_limit max_states);
      let i = !count in
      incr count;
      MT.add index m i;
      states := m :: !states;
      Tpan_obs.Metrics.Counter.incr m_states;
      on_progress !count;
      (i, true)
  in
  let queue = Queue.create () in
  let m0 = Marking.of_net net in
  let i0, _ = intern m0 in
  Queue.add (i0, m0) queue;
  let out = Hashtbl.create 1024 in
  while not (Queue.is_empty queue) do
    Tpan_obs.Cancel.checkpoint ();
    let i, m = Queue.take queue in
    let succs =
      List.map
        (fun t ->
          let m' = Marking.fire net m t in
          let j, fresh = intern m' in
          if fresh then Queue.add (j, m') queue;
          (t, j))
        (Marking.enabled_transitions net m)
    in
    Hashtbl.replace out i succs
  done;
  let states = Array.of_list (List.rev !states) in
  let edges = Array.init (Array.length states) (fun i -> Option.value ~default:[] (Hashtbl.find_opt out i)) in
  { net; states; edges }

let num_states g = Array.length g.states
let num_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.edges

let deadlocks g =
  List.filter (fun i -> g.edges.(i) = []) (List.init (num_states g) Fun.id)

let is_deadlock_free g = deadlocks g = []

let place_bound g p =
  Array.fold_left (fun acc m -> Stdlib.max acc (Marking.tokens m p)) 0 g.states

let is_safe g =
  List.for_all (fun p -> place_bound g p <= 1) (Net.places g.net)

let live_transitions g =
  let seen = Array.make (Net.num_transitions g.net) false in
  Array.iter (fun l -> List.iter (fun (t, _) -> seen.(t) <- true) l) g.edges;
  List.filter (fun t -> seen.(t)) (Net.transitions g.net)

let find_marking g m =
  let n = num_states g in
  let rec go i = if i >= n then None else if Marking.equal g.states.(i) m then Some i else go (i + 1) in
  go 0

let path_to g pred =
  let n = num_states g in
  let prev = Array.make n None in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(0) <- true;
  Queue.add 0 queue;
  let target = ref None in
  if pred g.states.(0) then target := Some 0;
  while !target = None && not (Queue.is_empty queue) do
    let i = Queue.take queue in
    List.iter
      (fun (t, j) ->
        if not visited.(j) then begin
          visited.(j) <- true;
          prev.(j) <- Some (i, t);
          if !target = None && pred g.states.(j) then target := Some j;
          Queue.add j queue
        end)
      g.edges.(i)
  done;
  match !target with
  | None -> None
  | Some j ->
    let rec build acc j =
      match prev.(j) with None -> acc | Some (i, t) -> build (t :: acc) i
    in
    Some (build [] j)

let explore_result ?max_states ?on_progress net =
  match explore ?max_states ?on_progress net with
  | g -> Ok g
  | exception State_limit n -> Error (`State_limit n)
