type omega_marking = int array

let omega = max_int

type tree = {
  net : Net.t;
  nodes : omega_marking array;
  children : (Net.trans * int) list array;
}

let geq (a : omega_marking) (b : omega_marking) =
  let ok = ref true in
  Array.iteri (fun i bi -> if a.(i) < bi then ok := false) b;
  !ok

let strictly_gt a b = geq a b && a <> b

let enabled net (m : omega_marking) t =
  List.for_all (fun (p, w) -> m.(p) = omega || m.(p) >= w) (Net.inputs net t)

let fire net (m : omega_marking) t =
  let m' = Array.copy m in
  List.iter (fun (p, w) -> if m'.(p) <> omega then m'.(p) <- m'.(p) - w) (Net.inputs net t);
  List.iter (fun (p, w) -> if m'.(p) <> omega then m'.(p) <- m'.(p) + w) (Net.outputs net t);
  m'

(* Accelerate: if an ancestor is strictly covered, grow the increasing
   components to omega. *)
let accelerate ancestors m =
  let m' = Array.copy m in
  List.iter
    (fun anc ->
      if strictly_gt m anc then
        Array.iteri (fun i v -> if m.(i) > v then m'.(i) <- omega) anc)
    ancestors;
  m'

let m_nodes = Tpan_obs.Metrics.counter "petri.coverability.nodes"

let build ?(max_nodes = 100_000) ?(on_progress = fun _ -> ()) net =
  let nodes = ref [] and count = ref 0 in
  let children = Hashtbl.create 256 in
  let add m =
    Tpan_obs.Cancel.checkpoint ();
    if !count >= max_nodes then raise (Reachability.State_limit max_nodes);
    let i = !count in
    incr count;
    nodes := m :: !nodes;
    Tpan_obs.Metrics.Counter.incr m_nodes;
    on_progress !count;
    i
  in
  (* DFS keeping the ancestor chain for acceleration; [seen] prunes repeats
     (turning the tree into a graph keeps it finite and smaller). *)
  let seen = Hashtbl.create 256 in
  let rec go ancestors i m =
    Hashtbl.replace seen m i;
    let succs =
      List.filter_map
        (fun t ->
          if not (enabled net m t) then None
          else begin
            let m' = accelerate (m :: ancestors) (fire net m t) in
            match Hashtbl.find_opt seen m' with
            | Some j -> Some (t, j)
            | None ->
              let j = add m' in
              go (m :: ancestors) j m';
              Some (t, j)
          end)
        (Net.transitions net)
    in
    Hashtbl.replace children i succs
  in
  let m0 = Net.initial_marking net in
  let i0 = add m0 in
  go [] i0 m0;
  let nodes = Array.of_list (List.rev !nodes) in
  let children = Array.init (Array.length nodes) (fun i -> Option.value ~default:[] (Hashtbl.find_opt children i)) in
  { net; nodes; children }

let is_bounded tr = Array.for_all (fun m -> Array.for_all (fun v -> v <> omega) m) tr.nodes

let place_bound tr p =
  let bound = ref 0 in
  let unbounded = ref false in
  Array.iter
    (fun m -> if m.(p) = omega then unbounded := true else bound := Stdlib.max !bound m.(p))
    tr.nodes;
  if !unbounded then None else Some !bound

let unbounded_places tr =
  List.filter (fun p -> place_bound tr p = None) (Net.places tr.net)

let coverable tr target = Array.exists (fun m -> geq m target) tr.nodes

let pp_omega_marking net fmt m =
  let entries = List.filter (fun p -> m.(p) > 0) (Net.places net) in
  Format.pp_print_string fmt "{";
  List.iteri
    (fun i p ->
      if i > 0 then Format.pp_print_string fmt ", ";
      if m.(p) = omega then Format.fprintf fmt "w*%s" (Net.place_name net p)
      else if m.(p) = 1 then Format.pp_print_string fmt (Net.place_name net p)
      else Format.fprintf fmt "%d*%s" m.(p) (Net.place_name net p))
    entries;
  Format.pp_print_string fmt "}"
