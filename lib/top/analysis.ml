module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module J = Tpan_obs.Jsonv

type source = File of string | Builtin of string | Net of Tpn.t

let load ?(params = []) source =
  Error.guard @@ fun () ->
  match source with
  | Net tpn ->
    if params <> [] then invalid_arg "Analysis.load: a Net source takes no parameters";
    tpn
  | File path ->
    if params <> [] then
      invalid_arg "Analysis.load: a File source takes no parameters (edit the file)";
    Tpan_dsl.Parser.parse_file path
  | Builtin name -> (
    match Models.find name with
    | Some m -> m.Models.make params
    | None ->
      invalid_arg
        (Printf.sprintf "unknown model %S (available: %s)" name
           (String.concat ", " Models.names)))

type report = {
  model : string option;
  states : int;
  edges : int;
  decision_nodes : int;
  mean_cycle_time : Q.t option;
  deterministic_period : Q.t option;
  throughputs : (string * Q.t) list;
}

(* Observers of completed analyses: the CLI's run ledger registers one so
   every facade report lands in the run record; tooling can add more.
   Hooks run on the calling domain, after the report is built; a hook
   that raises does not fail the analysis. *)
let report_hooks : (report -> unit) list ref = ref []
let add_report_hook h = report_hooks := h :: !report_hooks

let notify report =
  Tpan_obs.Log.info "analysis complete"
    ~fields:
      [
        ("states", Tpan_obs.Jsonv.Int report.states);
        ("edges", Tpan_obs.Jsonv.Int report.edges);
        ("decision_nodes", Tpan_obs.Jsonv.Int report.decision_nodes);
        ("throughputs", Tpan_obs.Jsonv.Int (List.length report.throughputs));
      ];
  List.iter (fun h -> try h report with _ -> ()) !report_hooks;
  report

let compute ?max_states ?(throughputs = []) tpn =
  Error.guard
  @@ fun () ->
  let g = CG.build ?max_states tpn in
  let states = CG.Graph.num_states g and edges = CG.Graph.num_edges g in
  match M.Concrete.analyze g with
  | res ->
    {
      model = None;
      states;
      edges;
      decision_nodes = List.length res.Rates.dg.DG.nodes;
      mean_cycle_time = Some res.Rates.total_weight;
      deterministic_period = None;
      throughputs = List.map (fun t -> (t, M.Concrete.throughput res g t)) throughputs;
    }
  | exception DG.Deterministic_cycle _ -> (
    match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
    | Some (period, _states) ->
      {
        model = None;
        states;
        edges;
        decision_nodes = 0;
        mean_cycle_time = None;
        deterministic_period = Some period;
        throughputs = [];
      }
    | None ->
      {
        model = None;
        states;
        edges;
        decision_nodes = 0;
        mean_cycle_time = None;
        deterministic_period = None;
        throughputs = [];
      })

(* The deprecated pre-artifact entry point: same pipeline, no
   canonicalization or caching. One warning per process, through the
   structured log (stderr only when a sink is configured). *)
let analyze_warned = ref false

let analyze ?max_states ?throughputs tpn =
  if not !analyze_warned then begin
    analyze_warned := true;
    Tpan_obs.Log.warn
      "Tpan.Analysis.analyze is deprecated; use Tpan.Artifact.analysis (canonicalized, \
       cached)"
  end;
  Result.map notify (compute ?max_states ?throughputs tpn)

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let report_fields r =
  [
    ("model", (match r.model with None -> J.Null | Some m -> J.Str m));
    ("states", J.Int r.states);
    ("edges", J.Int r.edges);
    ("decision_nodes", J.Int r.decision_nodes);
    ( "mean_cycle_time",
      match r.mean_cycle_time with None -> J.Null | Some q -> J.Raw (qf q) );
    ( "deterministic_period",
      match r.deterministic_period with None -> J.Null | Some q -> J.Raw (qf q) );
    ("throughputs", J.Obj (List.map (fun (t, v) -> (t, J.Raw (qf v))) r.throughputs));
  ]

let report_to_json r =
  J.Obj (("schema", J.Int 1) :: ("kind", J.Str "analysis") :: report_fields r)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  (match r.model with
   | Some m -> Format.fprintf fmt "model: %s@," m
   | None -> ());
  Format.fprintf fmt "timed reachability graph: %d states, %d edges@," r.states r.edges;
  Format.fprintf fmt "decision nodes: %d@," r.decision_nodes;
  (match r.mean_cycle_time with
   | Some q -> Format.fprintf fmt "mean cycle time: %s@," (qf q)
   | None -> ());
  (match r.deterministic_period with
   | Some q -> Format.fprintf fmt "deterministic cycle, period %s@," (qf q)
   | None -> ());
  List.iter
    (fun (t, v) ->
      Format.fprintf fmt "throughput(%s): %s per time unit (period %s)@," t (qf v)
        (qf (Q.inv v)))
    r.throughputs;
  Format.fprintf fmt "@]"
