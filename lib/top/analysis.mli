(** One-call analysis facade.

    [load] turns a net source into a {!Tpan_core.Tpn.t}; [analyze] runs the
    whole concrete pipeline (timed reachability graph → decision graph →
    rate solve → measures) and returns a plain record — every failure mode
    comes back as an {!Error.t} value, never an exception:

    {[
      let net = Tpan.Analysis.(load (Builtin "stopwait")) |> Result.get_ok in
      match Tpan.Analysis.analyze ~throughputs:[ "t7" ] net with
      | Ok r -> …
      | Error e -> prerr_endline (Tpan.Error.to_string e)
    ]} *)

module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn

type source =
  | File of string  (** a [.tpn] description *)
  | Builtin of string  (** a {!Models} registry name *)
  | Net of Tpn.t  (** an already-built net, passed through *)

val load : ?params:(string * Q.t) list -> source -> (Tpn.t, Error.t) result
(** [params] are parameter overrides for a [Builtin] source (rejected — as
    [Invalid_input] — for the other sources, which carry no parameters). *)

type report = {
  model : string option;  (** builtin name, when known *)
  states : int;  (** timed reachability graph *)
  edges : int;
  decision_nodes : int;
  mean_cycle_time : Q.t option;
      (** mean time per visit of the normalization node; [None] when the
          behaviour is a deterministic cycle or terminates *)
  deterministic_period : Q.t option;
      (** period of the deterministic cycle, for nets with no recurring
          decision; [None] otherwise *)
  throughputs : (string * Q.t) list;  (** completions per unit time *)
}

val compute :
  ?max_states:int -> ?throughputs:string list -> Tpn.t -> (report, Error.t) result
(** The raw concrete pipeline, uncached and silent: TRG → decision
    graph → rate solve → measures. Concrete nets only ([Unsupported]
    for symbolic ones — bind their symbols first with
    {!Tpn.bind_times}). A net that turns out to be
    deterministic-cyclic is not an error: the report carries
    [deterministic_period] instead of [mean_cycle_time].

    Callers normally want {!Artifact.analysis} (content-addressed,
    cached, notified) instead; [compute] is the function the artifact
    layer caches. *)

val analyze :
  ?max_states:int -> ?throughputs:string list -> Tpn.t -> (report, Error.t) result
(** @deprecated Use {!Artifact.analysis}, which canonicalizes the net
    and serves repeated requests from the artifact cache. This alias
    runs {!compute} + {!notify} exactly as before the redesign, and
    logs a one-time deprecation warning through {!Tpan_obs.Log}. *)

val notify : report -> report
(** Emit the analysis-complete log record and run the registered
    report hooks (returns its argument). The artifact layer calls this
    on every served report — cache hits included — so ledger rows
    always carry the report they served. *)

val add_report_hook : (report -> unit) -> unit
(** Observe every successful {!analyze} report — the CLI's run ledger
    uses this to attach analysis summaries to run records. Hooks run on
    the calling domain; a raising hook is ignored. *)

val report_fields : report -> (string * Tpan_obs.Jsonv.t) list
(** The report's payload fields, envelope-free — the CLI wraps them in
    its versioned JSON envelope (schema 2: [schema], [trace_id],
    [net_hash], [exit_code] + payload). *)

val report_to_json : report -> Tpan_obs.Jsonv.t
(** Versioned machine rendering ([{"schema": 1, "kind": "analysis", …}]
    — the schema-1 shape, kept for compatibility). *)

val pp_report : Format.formatter -> report -> unit
