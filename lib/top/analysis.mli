(** One-call analysis facade.

    [load] turns a net source into a {!Tpan_core.Tpn.t}; [analyze] runs the
    whole concrete pipeline (timed reachability graph → decision graph →
    rate solve → measures) and returns a plain record — every failure mode
    comes back as an {!Error.t} value, never an exception:

    {[
      let net = Tpan.Analysis.(load (Builtin "stopwait")) |> Result.get_ok in
      match Tpan.Analysis.analyze ~throughputs:[ "t7" ] net with
      | Ok r -> …
      | Error e -> prerr_endline (Tpan.Error.to_string e)
    ]} *)

module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn

type source =
  | File of string  (** a [.tpn] description *)
  | Builtin of string  (** a {!Models} registry name *)
  | Net of Tpn.t  (** an already-built net, passed through *)

val load : ?params:(string * Q.t) list -> source -> (Tpn.t, Error.t) result
(** [params] are parameter overrides for a [Builtin] source (rejected — as
    [Invalid_input] — for the other sources, which carry no parameters). *)

type report = {
  model : string option;  (** builtin name, when known *)
  states : int;  (** timed reachability graph *)
  edges : int;
  decision_nodes : int;
  mean_cycle_time : Q.t option;
      (** mean time per visit of the normalization node; [None] when the
          behaviour is a deterministic cycle or terminates *)
  deterministic_period : Q.t option;
      (** period of the deterministic cycle, for nets with no recurring
          decision; [None] otherwise *)
  throughputs : (string * Q.t) list;  (** completions per unit time *)
}

val analyze :
  ?max_states:int -> ?throughputs:string list -> Tpn.t -> (report, Error.t) result
(** Concrete nets only ([Unsupported] for symbolic ones — bind their
    symbols first with {!Tpn.bind_times}). A net that turns out to be
    deterministic-cyclic is not an error: the report carries
    [deterministic_period] instead of [mean_cycle_time].

    Every successful analysis emits a {!Tpan_obs.Log} info record and
    runs the registered report hooks. *)

val add_report_hook : (report -> unit) -> unit
(** Observe every successful {!analyze} report — the CLI's run ledger
    uses this to attach analysis summaries to run records. Hooks run on
    the calling domain; a raising hook is ignored. *)

val report_to_json : report -> Tpan_obs.Jsonv.t
(** Versioned machine rendering ([{"schema": 1, "kind": "analysis", …}]). *)

val pp_report : Format.formatter -> report -> unit
