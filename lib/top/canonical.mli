(** Canonicalized timed Petri nets with a stable content hash.

    Content addressing is what makes analysis artifacts cacheable:
    two requests carrying the same net — regardless of where its
    [.tpn] file lives, what the net is called, or in what order its
    places and transitions were declared — must map to the same cache
    key. [of_tpn] derives a canonical serialization (places and
    transitions sorted by name, bags sorted by place name, timing
    specs rendered exactly, the constraint system rendered with
    deterministically-ordered terms and sorted constraint rows) and
    hashes it.

    The hash covers everything analysis semantics depend on: marking,
    arc weights, enabling/firing/frequency specs (symbolic or exact
    rational) and timing constraints. It deliberately excludes the net
    name and constraint labels, which are presentation. The
    serialization format itself is versioned (a [tpan-canonical N]
    header line), so a format change changes every hash rather than
    silently colliding with old persisted artifacts. *)

type t

val of_tpn : Tpan_core.Tpn.t -> t
(** Canonicalization is cheap (sorting a few dozen names) — the net
    itself is not rebuilt, only serialized in canonical order. *)

val tpn : t -> Tpan_core.Tpn.t
(** The underlying net, unchanged. *)

val hash : t -> string
(** Hex content hash (stable across processes and declaration
    orders). *)

val serialization : t -> string
(** The canonical text the hash is computed over — for tests and
    debugging. *)

val equal : t -> t -> bool
(** Hash equality. *)
