(* The facade's error classification: [Tpan_core.Error] plus every
   exception layered above core — perf (via [Tpan_perf.Errors]) and the
   parser. This is the one classifier the CLI needs. *)

include Tpan_core.Error

let of_exn = function
  | Tpan_dsl.Parser.Parse_error (pos, msg) ->
    Some
      (Parse_error { line = pos.Tpan_dsl.Lexer.line; col = pos.Tpan_dsl.Lexer.col; msg })
  | Invalid_argument msg -> Some (Invalid_input msg)
  | e -> Tpan_perf.Errors.of_exn e

let guard f =
  match f () with
  | v -> Ok v
  | exception e -> (
    match of_exn e with Some err -> Error err | None -> raise e)
