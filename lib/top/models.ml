module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn
module P = Tpan_protocols

type t = {
  name : string;
  summary : string;
  params : (string * Q.t) list;
  deliveries : string list;
  make : (string * Q.t) list -> Tpn.t;
}

(* [make] helpers: overrides must name declared parameters; the lookup
   falls back to the model's default. *)

let check_overrides name declared overrides =
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k declared) then
        invalid_arg
          (Printf.sprintf "model %s has no parameter %S (available: %s)" name k
             (match declared with
              | [] -> "none — bind symbols with -p instead"
              | l -> String.concat ", " (List.map fst l))))
    overrides

let getp defaults overrides k =
  match List.assoc_opt k overrides with
  | Some v -> v
  | None -> List.assoc k defaults

let stopwait_params =
  let d = P.Stopwait.paper_params in
  [
    ("timeout", d.P.Stopwait.timeout);
    ("send_time", d.P.Stopwait.send_time);
    ("transit_time", d.P.Stopwait.transit_time);
    ("process_time", d.P.Stopwait.process_time);
    ("packet_loss", d.P.Stopwait.packet_loss);
    ("ack_loss", d.P.Stopwait.ack_loss);
  ]

let make_stopwait ov =
  check_overrides "stopwait" stopwait_params ov;
  let g = getp stopwait_params ov in
  P.Stopwait.concrete
    {
      P.Stopwait.timeout = g "timeout";
      send_time = g "send_time";
      transit_time = g "transit_time";
      process_time = g "process_time";
      packet_loss = g "packet_loss";
      ack_loss = g "ack_loss";
    }

let abp_params =
  let d = P.Abp.default_params in
  [
    ("timeout", d.P.Abp.timeout);
    ("send_time", d.P.Abp.send_time);
    ("transit_time", d.P.Abp.transit_time);
    ("process_time", d.P.Abp.process_time);
    ("packet_loss", d.P.Abp.packet_loss);
    ("ack_loss", d.P.Abp.ack_loss);
  ]

let make_abp ov =
  check_overrides "abp" abp_params ov;
  let g = getp abp_params ov in
  P.Abp.concrete
    {
      P.Abp.timeout = g "timeout";
      send_time = g "send_time";
      transit_time = g "transit_time";
      process_time = g "process_time";
      packet_loss = g "packet_loss";
      ack_loss = g "ack_loss";
    }

let handshake_params =
  let d = P.Handshake.default_params in
  [
    ("retry_timeout", d.P.Handshake.retry_timeout);
    ("send_time", d.P.Handshake.send_time);
    ("transit_time", d.P.Handshake.transit_time);
    ("accept_time", d.P.Handshake.accept_time);
    ("session_time", d.P.Handshake.session_time);
    ("request_loss", d.P.Handshake.request_loss);
    ("reply_loss", d.P.Handshake.reply_loss);
  ]

let make_handshake ov =
  check_overrides "handshake" handshake_params ov;
  let g = getp handshake_params ov in
  P.Handshake.concrete
    {
      P.Handshake.retry_timeout = g "retry_timeout";
      send_time = g "send_time";
      transit_time = g "transit_time";
      accept_time = g "accept_time";
      session_time = g "session_time";
      request_loss = g "request_loss";
      reply_loss = g "reply_loss";
    }

let channel_params =
  let d = P.Shared_channel.default_params in
  [
    ("a_think", d.P.Shared_channel.a.P.Shared_channel.think_time);
    ("a_tx", d.P.Shared_channel.a.P.Shared_channel.tx_time);
    ("a_weight", d.P.Shared_channel.a.P.Shared_channel.weight);
    ("b_think", d.P.Shared_channel.b.P.Shared_channel.think_time);
    ("b_tx", d.P.Shared_channel.b.P.Shared_channel.tx_time);
    ("b_weight", d.P.Shared_channel.b.P.Shared_channel.weight);
  ]

let make_channel ov =
  check_overrides "channel" channel_params ov;
  let g = getp channel_params ov in
  P.Shared_channel.concrete
    {
      P.Shared_channel.a =
        { P.Shared_channel.think_time = g "a_think"; tx_time = g "a_tx"; weight = g "a_weight" };
      b =
        { P.Shared_channel.think_time = g "b_think"; tx_time = g "b_tx"; weight = g "b_weight" };
    }

let ring_params =
  let d = P.Token_ring.default_params in
  [
    ("frame_weight", d.P.Token_ring.frame_weight);
    ("idle_weight", d.P.Token_ring.idle_weight);
    ("tx_time", d.P.Token_ring.tx_time);
    ("pass_time", d.P.Token_ring.pass_time);
  ]

let make_ring ov =
  check_overrides "ring" ring_params ov;
  let g = getp ring_params ov in
  P.Token_ring.concrete
    {
      P.Token_ring.stations = P.Token_ring.default_params.P.Token_ring.stations;
      frame_weight = g "frame_weight";
      idle_weight = g "idle_weight";
      tx_time = g "tx_time";
      pass_time = g "pass_time";
    }

let pipeline_params =
  let d = P.Pipeline.default_params in
  ("inject_delay", d.P.Pipeline.inject_delay)
  :: List.mapi (fun i q -> (Printf.sprintf "hop%d" (i + 1), q)) d.P.Pipeline.hop_delays

let make_pipeline ov =
  check_overrides "pipeline" pipeline_params ov;
  let g = getp pipeline_params ov in
  let hops = List.length P.Pipeline.default_params.P.Pipeline.hop_delays in
  P.Pipeline.concrete
    {
      P.Pipeline.inject_delay = g "inject_delay";
      hop_delays = List.init hops (fun i -> g (Printf.sprintf "hop%d" (i + 1)));
    }

let batch_params =
  let d = P.Batch.default_params in
  [
    ("timeout", d.P.Batch.timeout);
    ("send_time", d.P.Batch.send_time);
    ("transit_time", d.P.Batch.transit_time);
    ("process_time", d.P.Batch.process_time);
    ("packet_loss", d.P.Batch.packet_loss);
    ("ack_loss", d.P.Batch.ack_loss);
  ]

let make_batch ov =
  check_overrides "batch" batch_params ov;
  let g = getp batch_params ov in
  P.Batch.concrete
    {
      P.Batch.window = P.Batch.default_params.P.Batch.window;
      timeout = g "timeout";
      send_time = g "send_time";
      transit_time = g "transit_time";
      process_time = g "process_time";
      packet_loss = g "packet_loss";
      ack_loss = g "ack_loss";
    }

let sym name mk =
 fun ov ->
  check_overrides name [] ov;
  mk ()

let all =
  [
    {
      name = "stopwait";
      summary = "the paper's stop-and-wait protocol, Figure 1b timings";
      params = stopwait_params;
      deliveries = [ P.Stopwait.t_process_ack ];
      make = make_stopwait;
    };
    {
      name = "stopwait-sym";
      summary = "stop-and-wait with symbolic times and frequencies";
      params = [];
      deliveries = [ P.Stopwait.t_process_ack ];
      make = sym "stopwait-sym" P.Stopwait.symbolic;
    };
    {
      name = "abp";
      summary = "alternating-bit protocol, two stop-and-wait phases";
      params = abp_params;
      deliveries = P.Abp.deliveries;
      make = make_abp;
    };
    {
      name = "abp-sym";
      summary = "alternating-bit protocol with shared timing symbols";
      params = [];
      deliveries = P.Abp.deliveries;
      make = sym "abp-sym" P.Abp.symbolic;
    };
    {
      name = "handshake";
      summary = "connection-establishment handshake with retry timer";
      params = handshake_params;
      deliveries = [ P.Handshake.t_establish ];
      make = make_handshake;
    };
    {
      name = "handshake-sym";
      summary = "handshake with symbolic times and frequencies";
      params = [];
      deliveries = [ P.Handshake.t_establish ];
      make = sym "handshake-sym" P.Handshake.symbolic;
    };
    {
      name = "channel";
      summary = "two stations arbitrating a shared channel";
      params = channel_params;
      deliveries = [ P.Shared_channel.t_grab_a; P.Shared_channel.t_grab_b ];
      make = make_channel;
    };
    {
      name = "scheduler-sym";
      summary = "weighted channel scheduler, symbolic core";
      params = [];
      deliveries = [ P.Shared_channel.t_grab_a; P.Shared_channel.t_grab_b ];
      make = sym "scheduler-sym" P.Shared_channel.symbolic;
    };
    {
      name = "ring";
      summary = "4-station token ring";
      params = ring_params;
      deliveries = [ P.Token_ring.use 0 ];
      make = make_ring;
    };
    {
      name = "ring-sym";
      summary = "4-station token ring with shared symbols";
      params = [];
      deliveries = [ P.Token_ring.use 0 ];
      make = sym "ring-sym" (fun () -> P.Token_ring.symbolic ~stations:4);
    };
    {
      name = "pipeline";
      summary = "deterministic 4-hop store-and-forward line";
      params = pipeline_params;
      deliveries = [ P.Pipeline.t_deliver ];
      make = make_pipeline;
    };
    {
      name = "batch";
      summary = "window-3 batch acknowledgement protocol";
      params = batch_params;
      deliveries = [ P.Batch.t_done ];
      make = make_batch;
    };
  ]

let names = List.map (fun m -> m.name) all
let find name = List.find_opt (fun m -> m.name = name) all
