(** Analysis artifacts as pure cached functions of canonical nets.

    This is the redesigned facade the ROADMAP's [tpan serve] item asks
    for: every analysis product — the concrete timed reachability
    graph, the symbolic graph with its solved rates, closed-form
    throughput expressions, full analysis reports, simulation
    summaries — is an {e artifact}: a schema-versioned value computed
    by a pure function of a {!Canonical} net (plus the artifact's own
    parameters), memoized in a keyed {!Tpan_cache.Cache}.

    Identical nets therefore hit the symbolic build {e exactly once}
    per process (and, with persistence configured, once per cache
    directory): a million "what's my throughput at loss=p?" requests
    cost one TRG construction plus a million cheap expression
    evaluations — the paper's whole argument, turned into an API.

    Artifact kinds are open-ended by design: a future LP bound engine
    adds a cache and a function here without touching the server or
    the CLI. Errors are never cached (a deadline abort must not poison
    the cache for later, better-funded requests).

    The CLI subcommands and [tpan serve] share these functions, so
    both front ends serve byte-identical results from one code path.

    Cache metrics land in the {!Tpan_obs.Metrics} registry under
    [cache.trg.*], [cache.symbolic.*], [cache.closed_form.*],
    [cache.report.*], [cache.sim.*]. *)

module Q = Tpan_mathkit.Q

val artifact_schema : int
(** Version stamp carried by every artifact's JSON rendering. *)

val configure : ?budget_bytes:int -> ?persist_dir:string -> unit -> unit
(** Set the per-cache byte budget (default 128 MiB) and the persistence
    directory (e.g. [".tpan/cache"]) for the artifact kinds with a
    codec — closed forms, point evaluations, concrete TRGs and analysis
    reports. Omitting [persist_dir] turns persistence off (the setting
    is replaced, not merged). Resets existing caches — call at startup,
    before the first artifact request. *)

val reset_caches : unit -> unit
(** Drop every cached artifact (counters keep their totals). The bench
    harness uses this to measure genuinely-uncached builds. *)

val cache_stats : unit -> (string * Tpan_cache.Cache.stats) list
(** Live [(kind, stats)] per artifact cache — ["trg"], ["symbolic"],
    ["closed_form"], ["eval"], ["report"], ["sim"] — for a server's
    [/statusz] page. Empty if no artifact has been requested yet (the
    caches are created lazily and this never forces them). *)

(** {1 Graph artifacts} *)

val concrete_trg :
  ?max_states:int ->
  Canonical.t ->
  (Tpan_core.Concrete.Graph.graph, Error.t) result
(** The concrete timed reachability graph, cached per
    [(hash, max_states)]. *)

val symbolic :
  ?max_states:int ->
  Canonical.t ->
  (Tpan_core.Symbolic.Graph.graph * Tpan_perf.Measures.Symbolic.result, Error.t) result
(** The symbolic TRG together with its collapsed decision graph and
    solved traversal rates — the expensive artifact everything
    closed-form hangs off. Cached per [(hash, max_states)]; the
    [cache.symbolic.misses] counter counts actual symbolic builds. *)

(** {1 Closed forms — the million-user fast path} *)

val closed_form :
  ?max_states:int ->
  Canonical.t ->
  transition:string ->
  (Tpan_symbolic.Ratfun.t, Error.t) result
(** The net's closed-form throughput (completions of [transition] per
    time unit) as a rational function of its symbols. Persistable:
    with a cache directory configured, a restarted server serves this
    without rebuilding the symbolic TRG. *)

val eval :
  ?max_states:int ->
  Canonical.t ->
  transition:string ->
  point:(string * Q.t) list ->
  (Q.t, Error.t) result
(** Evaluate the cached closed form at a rational point (keys are
    variable display names: ["E(t3)"], ["f(t4)"], …). [Invalid_input]
    on a missing binding, [Unsupported] on a vanishing denominator.
    The value itself is memoized (cache ["eval"]): on large nets the
    exact rational evaluation dominates a served request, and the
    result is a pure function of the net, transition and point. *)

val sweep_exprs :
  ?max_states:int ->
  ?jobs:int ->
  Canonical.t ->
  transitions:string list ->
  bindings:(string * Q.t) list ->
  axes:Tpan_perf.Sweep.axis list ->
  (Tpan_perf.Sweep.t, Error.t) result
(** Closed-form sweep: derive (or hit) the cached throughput
    expressions, then evaluate the grid on the worker pool. *)

(** {1 Reports} *)

val analysis :
  ?max_states:int ->
  ?throughputs:string list ->
  Canonical.t ->
  (Analysis.report, Error.t) result
(** The full concrete analysis report, cached per
    [(hash, max_states, throughputs)]. Every call — hit or miss —
    runs {!Analysis.notify}, so report hooks (the run ledger) fire per
    request, not per build. *)

(** {1 Simulation summaries} *)

type sim_stat =
  | Single of { mean : float; deadlocked : bool }
  | Estimate of { mean : float; std_error : float; ci95 : float * float; runs : int }

type sim_summary = {
  net_hash : string;
  seed : int;
  runs : int;
  horizon : Q.t;
  throughputs : (string * sim_stat) list;
}

val simulate :
  ?seed:int ->
  ?runs:int ->
  horizon:Q.t ->
  transitions:string list ->
  Canonical.t ->
  (sim_summary, Error.t) result
(** Monte-Carlo summary, cached per
    [(hash, seed, runs, horizon, transitions)] — simulation is
    deterministic in the seed, so the summary is a pure function of
    its key. Replications fan out over the worker pool exactly as
    before. *)

val sim_summary_fields : sim_summary -> (string * Tpan_obs.Jsonv.t) list
(** Envelope-free payload fields (the CLI and server wrap them). *)

(** {1 Warm-start} *)

val warm : ?max_states:int -> string list -> (string * (unit, Error.t) result) list
(** [warm names] pre-builds the expensive artifacts for each builtin
    model named: the full analysis report and concrete TRG for concrete
    models, the closed-form throughput of every default delivery for
    symbolic ones. Served traffic then starts on a hot cache — and with
    a persistence directory configured, the first process to warm also
    seeds the cache files every later process replays. Returns one
    [(name, result)] per requested model; unknown names and build
    failures report as [Error] without aborting the rest. *)
