module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints

type t = { tpn : Tpn.t; hash : string; serialization : string }

let time_str = function
  | Tpn.Fixed q -> Q.to_string q
  | Tpn.Sym v -> Var.name v

let freq_str = function
  | Tpn.Freq q -> Q.to_string q
  | Tpn.Freq_sym v -> Var.name v

(* Deterministic affine-expression rendering: the constant first, then
   terms sorted by variable display name. *)
let lin_str e =
  let terms =
    Lin.terms e
    |> List.map (fun (v, c) -> (Var.name v, c))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  String.concat "+"
    (Q.to_string (Lin.constant e)
    :: List.map (fun (n, c) -> Q.to_string c ^ "*" ^ n) terms)

let rel_str = function
  | `Ge -> ">="
  | `Gt -> ">"
  | `Eq -> "="
  | `Le -> "<="
  | `Lt -> "<"

let serialize tpn =
  let net = Tpn.net tpn in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tpan-canonical 1\n";
  let by_name name xs = List.sort (fun a b -> String.compare (name a) (name b)) xs in
  let init = Net.initial_marking net in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "place %s %d\n" (Net.place_name net p) init.(p)))
    (by_name (Net.place_name net) (Net.places net));
  let bag_str bag =
    bag
    |> List.map (fun (p, w) -> (Net.place_name net p, w))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (n, w) -> Printf.sprintf "%d*%s" w n)
    |> String.concat ","
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "trans %s in=[%s] out=[%s] E=%s F=%s f=%s\n"
           (Net.trans_name net t)
           (bag_str (Net.inputs net t))
           (bag_str (Net.outputs net t))
           (time_str (Tpn.enabling tpn t))
           (time_str (Tpn.firing tpn t))
           (freq_str (Tpn.frequency tpn t))))
    (by_name (Net.trans_name net) (Net.transitions net));
  (* Constraint rows sorted (and deduplicated) as rendered strings, so
     neither declaration order nor labels reach the hash. *)
  C.constraints (Tpn.constraints tpn)
  |> List.map (fun (_label, rel, lhs, rhs) ->
         Printf.sprintf "constraint %s %s %s\n" (lin_str lhs) (rel_str rel)
           (lin_str rhs))
  |> List.sort_uniq String.compare
  |> List.iter (Buffer.add_string buf);
  Buffer.contents buf

let of_tpn tpn =
  let serialization = serialize tpn in
  { tpn; hash = Digest.to_hex (Digest.string serialization); serialization }

let tpn c = c.tpn
let hash c = c.hash
let serialization c = c.serialization
let equal a b = String.equal a.hash b.hash
