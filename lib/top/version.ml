(* Bumped whenever the CLI surface or an output schema changes; the run
   ledger stamps every record with it so histories stay attributable
   across builds. *)
let string = "1.1.0"
