(** The build version string, shown by [tpan version] and embedded in
    every run-ledger record. *)

val string : string
