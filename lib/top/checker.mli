(** Facade entry point for the three-way differential checker.

    Re-exports {!Tpan_check} under the [Tpan] namespace and adds the
    source-level plumbing the CLI needs: load a {!Analysis.source},
    resolve the delivery transition (explicitly, from the model registry,
    or by the zero-frequency-conflict heuristic), and run
    {!Tpan_check.Check.check_tpn}. *)

module Check = Tpan_check.Check
module Gen = Tpan_check.Gen
module Sampler = Tpan_check.Sampler
module Shrink = Tpan_check.Shrink

val check_source :
  ?config:Check.config ->
  ?delivery:string ->
  Analysis.source ->
  (Check.outcome, Error.t) result
