(** Registry of the built-in protocol models.

    Each entry names its adjustable parameters (with default values) and
    its default delivery transitions — the transitions whose completion
    rate is "the" protocol throughput. [make] rebuilds the net with a set
    of parameter overrides, which is what lets the sweep engine vary
    [timeout] across a grid without the caller knowing the model's
    parameter record. *)

module Q = Tpan_mathkit.Q

type t = {
  name : string;
  summary : string;
  params : (string * Q.t) list;
      (** adjustable parameters and their defaults; empty for symbolic
          models (bind their symbols instead) *)
  deliveries : string list;  (** default throughput transitions *)
  make : (string * Q.t) list -> Tpan_core.Tpn.t;
      (** build with overrides; raises [Invalid_argument] on an unknown
          parameter name *)
}

val all : t list
val names : string list
val find : string -> t option
