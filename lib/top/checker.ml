(* Facade over [Tpan_check]: resolve a CLI-level source and a delivery
   transition, then run the three-way differential check. *)

module Check = Tpan_check.Check
module Gen = Tpan_check.Gen
module Sampler = Tpan_check.Sampler
module Shrink = Tpan_check.Shrink

let default_delivery source tpn =
  match source with
  | Analysis.Builtin name -> (
    match Models.find name with
    | Some m -> ( match m.Models.deliveries with d :: _ -> Some d | [] -> None)
    | None -> None)
  | Analysis.File _ | Analysis.Net _ -> (
    (* a lone zero-frequency-conflict partner (the stop-and-wait "ack
       beats timeout" shape) is a good guess; otherwise the caller must
       say which transition completes a delivery *)
    let net = Tpan_core.Tpn.net tpn in
    let module Net = Tpan_petri.Net in
    match
      List.filter
        (fun t ->
          (not (Tpan_core.Tpn.is_zero_frequency tpn t))
          && List.exists
               (fun t' ->
                 t' <> t
                 && Tpan_core.Tpn.is_zero_frequency tpn t'
                 && Net.structurally_conflicting net t t')
               (Net.transitions net))
        (Net.transitions net)
    with
    | [ t ] -> Some (Net.trans_name net t)
    | _ -> None)

let check_source ?config ?delivery source =
  match Analysis.load source with
  | Error e -> Error e
  | Ok tpn -> (
    let name =
      match source with
      | Analysis.File path -> Filename.basename path
      | Analysis.Builtin n -> n
      | Analysis.Net t -> Tpan_petri.Net.name (Tpan_core.Tpn.net t)
    in
    let delivery =
      match delivery with Some d -> Some d | None -> default_delivery source tpn
    in
    match delivery with
    | None ->
      Error
        (Error.Invalid_input
           "cannot infer the delivery transition for this net; pass --delivery")
    | Some d -> Check.check_tpn ?config ~name ~delivery:d tpn)
