(** The unified error type ({!Tpan_core.Error.t}) with the facade-level
    exception classifier covering every layer. *)

type t = Tpan_core.Error.t =
  | Unsupported of string
  | Insufficient of { lhs : string; rhs : string; hint : string }
  | State_limit of int
  | Unsolvable of string
  | Deterministic_cycle of int list
  | Parse_error of { line : int; col : int; msg : string }
  | Io_error of string
  | Invalid_input of string
  | Deadline_exceeded of string

val to_string : t -> string

val exit_code : t -> int
(** Stable process exit codes — see {!Tpan_core.Error.exit_code}. *)

val of_exn : exn -> t option
(** Classifies core, perf and parser exceptions (and maps
    [Invalid_argument] onto [Invalid_input]); [None] for genuine bugs. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run the thunk, returning classified failures as [Error]; unclassified
    exceptions propagate. *)

val pp : Format.formatter -> t -> unit
