module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn
module Net = Tpan_petri.Net
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Sweep = Tpan_perf.Sweep
module Sim = Tpan_sim.Simulator
module Rf = Tpan_symbolic.Ratfun
module Cache = Tpan_cache.Cache
module Codec = Tpan_cache.Codec
module J = Tpan_obs.Jsonv

let artifact_schema = 2

(* ----- cache instances -----

   One cache per artifact kind, created lazily under the configuration
   in force at first use. [configure] resets them (intended for process
   startup, before the first request). *)

type config = { budget_bytes : int; persist_dir : string option }

let config = ref { budget_bytes = 128 * 1024 * 1024; persist_dir = None }

type sim_stat =
  | Single of { mean : float; deadlocked : bool }
  | Estimate of { mean : float; std_error : float; ci95 : float * float; runs : int }

type sim_summary = {
  net_hash : string;
  seed : int;
  runs : int;
  horizon : Q.t;
  throughputs : (string * sim_stat) list;
}

type caches = {
  trg : CG.Graph.graph Cache.t;
  symbolic : (SG.Graph.graph * M.Symbolic.result) Cache.t;
  closed : Rf.t Cache.t;
  eval_q : Q.t Cache.t;
  report : Analysis.report Cache.t;
  sim : sim_summary Cache.t;
}

let caches_cell : caches option ref = ref None
let caches_mutex = Mutex.create ()

(* The report codec lives here rather than in [Tpan_cache.Codec]: the
   record is defined by this library, which the cache layer must not
   depend on. Exact throughout — every rational renders via
   [Q.to_string] and parses back unchanged. *)
let report_to_json (r : Analysis.report) =
  let q_opt = function None -> J.Null | Some q -> Codec.q_to_json q in
  J.Obj
    [
      ("model", (match r.Analysis.model with None -> J.Null | Some m -> J.Str m));
      ("states", J.Int r.Analysis.states);
      ("edges", J.Int r.Analysis.edges);
      ("decision_nodes", J.Int r.Analysis.decision_nodes);
      ("mean_cycle_time", q_opt r.Analysis.mean_cycle_time);
      ("deterministic_period", q_opt r.Analysis.deterministic_period);
      ( "throughputs",
        J.List
          (List.map
             (fun (name, q) -> J.List [ J.Str name; Codec.q_to_json q ])
             r.Analysis.throughputs) );
    ]

let report_of_json doc =
  let exception Bad in
  let need = function Some x -> x | None -> raise Bad in
  let int = function J.Int n -> n | _ -> raise Bad in
  let q_opt = function J.Null -> None | j -> Some (need (Codec.q_of_json j)) in
  try
    Some
      {
        Analysis.model =
          (match need (J.member "model" doc) with
          | J.Null -> None
          | J.Str m -> Some m
          | _ -> raise Bad);
        states = int (need (J.member "states" doc));
        edges = int (need (J.member "edges" doc));
        decision_nodes = int (need (J.member "decision_nodes" doc));
        mean_cycle_time = q_opt (need (J.member "mean_cycle_time" doc));
        deterministic_period = q_opt (need (J.member "deterministic_period" doc));
        throughputs =
          (match need (J.member "throughputs" doc) with
          | J.List rows ->
            List.map
              (function
                | J.List [ J.Str name; qj ] -> (name, need (Codec.q_of_json qj))
                | _ -> raise Bad)
              rows
          | _ -> raise Bad);
      }
  with Bad -> None

let make_caches () =
  let { budget_bytes; persist_dir } = !config in
  let mem name = Cache.create ~name ~budget_bytes () in
  let persisted name encode decode =
    Cache.create ~name ~budget_bytes ?persist:persist_dir ~encode ~decode ()
  in
  {
    trg = persisted "trg" Codec.trg_to_json Codec.trg_of_json;
    symbolic = mem "symbolic";
    closed = persisted "closed_form" Codec.ratfun_to_json Codec.ratfun_of_json;
    eval_q = persisted "eval" Codec.q_to_json Codec.q_of_json;
    report = persisted "report" report_to_json report_of_json;
    sim = mem "sim";
  }

let caches () =
  Mutex.lock caches_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock caches_mutex)
    (fun () ->
      match !caches_cell with
      | Some c -> c
      | None ->
        let c = make_caches () in
        caches_cell := Some c;
        c)

let configure ?budget_bytes ?persist_dir () =
  Mutex.lock caches_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock caches_mutex)
    (fun () ->
      let c = !config in
      config :=
        {
          budget_bytes =
            (match budget_bytes with Some b -> b | None -> c.budget_bytes);
          (* full replace, not sticky: [configure ()] turns persistence
             off again, so a restarted embedder (or a test) can return
             to memory-only caches *)
          persist_dir;
        };
      caches_cell := None)

(* Surfacing per-kind hit/miss statistics to the serving layer's
   /statusz without exposing the cache instances themselves. Reads the
   live caches when they exist; never forces their creation. *)
let cache_stats () =
  Mutex.lock caches_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock caches_mutex)
    (fun () ->
      match !caches_cell with
      | None -> []
      | Some c ->
        [
          (Cache.name c.trg, Cache.stats c.trg);
          (Cache.name c.symbolic, Cache.stats c.symbolic);
          (Cache.name c.closed, Cache.stats c.closed);
          (Cache.name c.eval_q, Cache.stats c.eval_q);
          (Cache.name c.report, Cache.stats c.report);
          (Cache.name c.sim, Cache.stats c.sim);
        ])

let reset_caches () =
  Mutex.lock caches_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock caches_mutex)
    (fun () ->
      match !caches_cell with
      | None -> ()
      | Some c ->
        Cache.clear c.trg;
        Cache.clear c.symbolic;
        Cache.clear c.closed;
        Cache.clear c.eval_q;
        Cache.clear c.report;
        Cache.clear c.sim)

(* ----- cached pure functions -----

   [find_or_build] computes under the cache mutex, so identical keys
   build exactly once even under concurrent requests; a failing build
   caches nothing — errors must not outlive the request that hit them
   (a deadline abort, say). [Build_error] carries the typed error
   through the cache layer. *)

exception Build_error of Error.t

let cached cache key build =
  match
    Cache.find_or_build cache key (fun () ->
        match build () with Ok v -> v | Error e -> raise (Build_error e))
  with
  | v -> Ok v
  | exception Build_error e -> Error e

let ms_key = function None -> "-" | Some n -> string_of_int n

let concrete_trg ?max_states canonical =
  let key = Printf.sprintf "%s|ms=%s" (Canonical.hash canonical) (ms_key max_states) in
  cached (caches ()).trg key (fun () ->
      Error.guard (fun () -> CG.build ?max_states (Canonical.tpn canonical)))

let symbolic ?max_states canonical =
  let key = Printf.sprintf "%s|ms=%s" (Canonical.hash canonical) (ms_key max_states) in
  cached (caches ()).symbolic key (fun () ->
      Error.guard (fun () ->
          let g = SG.build ?max_states (Canonical.tpn canonical) in
          (g, M.Symbolic.analyze g)))

let closed_form ?max_states canonical ~transition =
  let key =
    Printf.sprintf "%s|ms=%s|thr=%s" (Canonical.hash canonical) (ms_key max_states)
      transition
  in
  cached (caches ()).closed key (fun () ->
      match symbolic ?max_states canonical with
      | Error e -> Error e
      | Ok (g, res) ->
        Error.guard (fun () ->
            match M.Symbolic.throughput res g transition with
            | thr -> thr
            | exception Not_found ->
              invalid_arg (Printf.sprintf "unknown transition %S" transition)))

(* Point evaluations are memoized too: on large nets the exact rational
   evaluation of the closed form dominates a served request, and the
   result is a pure function of (net, transition, point). *)
let eval_uncached ?max_states canonical ~transition ~point =
  match closed_form ?max_states canonical ~transition with
  | Error e -> Error e
  | Ok expr -> (
    match M.Symbolic.eval_at expr point with
    | v -> Ok v
    | exception Not_found ->
      let bound = List.map fst point in
      let missing =
        List.sort_uniq String.compare
          (List.filter_map
             (fun v ->
               let n = Tpan_symbolic.Var.name v in
               if List.mem n bound then None else Some n)
             (Tpan_symbolic.Poly.vars (Rf.num expr)
             @ Tpan_symbolic.Poly.vars (Rf.den expr)))
      in
      Error
        (Error.Invalid_input
           (Printf.sprintf "point misses variable bindings: %s"
              (String.concat ", " missing)))
    | exception Division_by_zero ->
      Error (Error.Unsupported "the throughput denominator vanishes at this point"))

let eval ?max_states canonical ~transition ~point =
  let pt =
    List.sort String.compare
      (List.map (fun (n, q) -> n ^ "=" ^ Q.to_string q) point)
  in
  let key =
    Printf.sprintf "%s|ms=%s|thr=%s|pt=%s" (Canonical.hash canonical)
      (ms_key max_states) transition (String.concat "," pt)
  in
  cached (caches ()).eval_q key (fun () ->
      eval_uncached ?max_states canonical ~transition ~point)

let sweep_exprs ?max_states ?jobs canonical ~transitions ~bindings ~axes =
  let rec forms acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
      match closed_form ?max_states canonical ~transition:t with
      | Error e -> Error e
      | Ok expr -> forms (("thr(" ^ t ^ ")", expr) :: acc) rest)
  in
  match forms [] transitions with
  | Error e -> Error e
  | Ok exprs -> Error.guard (fun () -> Sweep.over_expr ?jobs ~bindings ~exprs axes)

let analysis ?max_states ?(throughputs = []) canonical =
  let key =
    Printf.sprintf "%s|ms=%s|thr=%s" (Canonical.hash canonical) (ms_key max_states)
      (String.concat "," throughputs)
  in
  Result.map Analysis.notify
  @@ cached (caches ()).report key (fun () ->
         Analysis.compute ?max_states ~throughputs (Canonical.tpn canonical))

let simulate ?(seed = 42) ?(runs = 1) ~horizon ~transitions canonical =
  let key =
    Printf.sprintf "%s|seed=%d|runs=%d|h=%s|thr=%s" (Canonical.hash canonical) seed runs
      (Q.to_string horizon)
      (String.concat "," transitions)
  in
  cached (caches ()).sim key (fun () ->
      Error.guard (fun () ->
          let tpn = Canonical.tpn canonical in
          let net = Tpn.net tpn in
          let throughputs =
            List.map
              (fun name ->
                let t =
                  try Net.trans_of_name net name
                  with Not_found ->
                    invalid_arg (Printf.sprintf "unknown transition %S" name)
                in
                if runs <= 1 then begin
                  let stats = Sim.run ~seed ~horizon tpn in
                  ( name,
                    Single
                      {
                        mean = Sim.throughput stats t;
                        deadlocked = stats.Sim.deadlocked;
                      } )
                end
                else
                  let est =
                    Sim.run_many ~seed ~runs ~horizon tpn (fun s -> Sim.throughput s t)
                  in
                  ( name,
                    Estimate
                      {
                        mean = est.Sim.mean;
                        std_error = est.Sim.std_error;
                        ci95 = est.Sim.ci95;
                        runs = est.Sim.runs;
                      } ))
              transitions
          in
          {
            net_hash = Canonical.hash canonical;
            seed;
            runs = max 1 runs;
            horizon;
            throughputs;
          }))

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let sim_summary_fields s =
  [
    ("horizon", J.Raw (qf s.horizon));
    ("seed", J.Int s.seed);
    ("runs", J.Int s.runs);
    ( "throughputs",
      J.Obj
        (List.map
           (fun (name, stat) ->
             match stat with
             | Single { mean; deadlocked } ->
               (name, J.Obj [ ("mean", J.Float mean); ("deadlocked", J.Bool deadlocked) ])
             | Estimate { mean; std_error; ci95 = lo, hi; runs = _ } ->
               ( name,
                 J.Obj
                   [
                     ("mean", J.Float mean);
                     ("std_error", J.Float std_error);
                     ("ci95", J.List [ J.Float lo; J.Float hi ]);
                   ] ))
           s.throughputs) );
  ]

(* ----- warm-start ----- *)

let warm ?max_states names =
  List.map
    (fun name ->
      let result =
        match Models.find name with
        | None ->
          Error (Error.Invalid_input (Printf.sprintf "unknown builtin model %S" name))
        | Some (m : Models.t) -> (
          match Error.guard (fun () -> m.Models.make []) with
          | Error e -> Error e
          | Ok tpn ->
            let canonical = Canonical.of_tpn tpn in
            if Tpn.is_concrete tpn then
              match analysis ?max_states ~throughputs:m.Models.deliveries canonical with
              | Error e -> Error e
              | Ok _ -> Result.map ignore (concrete_trg ?max_states canonical)
            else
              List.fold_left
                (fun acc transition ->
                  match acc with
                  | Error _ -> acc
                  | Ok () ->
                    Result.map ignore (closed_form ?max_states canonical ~transition))
                (Ok ()) m.Models.deliveries)
      in
      (name, result))
    names
