module Net = Tpan_petri.Net
module Semantics = Tpan_core.Semantics

type target = To of int | Absorbed of int

type ('t, 'p) dedge = {
  src : int;
  dst : target;
  delay : 't;
  prob : 'p;
  path : int list;
  fired : Net.trans list;
  completed : Net.trans list;
}

type ('t, 'p) t = { nodes : int list; edges : ('t, 'p) dedge list }

exception Deterministic_cycle of int list

let m_nodes = Tpan_obs.Metrics.counter "perf.decision_graph.nodes"
let m_edges = Tpan_obs.Metrics.counter "perf.decision_graph.edges"
let m_collapsed = Tpan_obs.Metrics.counter "perf.decision_graph.states_collapsed"

let of_graph ~add ~mul (g : ('t, 'p) Semantics.graph) =
  Tpan_obs.Trace.with_span "decision_graph.collapse" @@ fun sp ->
  let nodes = Semantics.branching_states g in
  let is_decision = Array.make (Array.length g.Semantics.states) false in
  List.iter (fun i -> is_decision.(i) <- true) nodes;
  (* Walk a deterministic chain from the head edge of a decision node until
     the next decision node or a terminal state. *)
  let collapse src (first : ('t, 'p) Semantics.edge) =
    let rec go delay prob fired completed rev_path cur seen =
      Tpan_obs.Cancel.checkpoint ();
      if is_decision.(cur) then
        { src; dst = To cur; delay; prob; path = List.rev (cur :: rev_path);
          fired = List.rev fired; completed = List.rev completed }
      else
        match g.Semantics.out.(cur) with
        | [] ->
          { src; dst = Absorbed cur; delay; prob; path = List.rev (cur :: rev_path);
            fired = List.rev fired; completed = List.rev completed }
        | [ e ] ->
          if List.mem cur seen then raise (Deterministic_cycle (List.rev rev_path));
          go (add delay e.Semantics.delay)
            (mul prob e.Semantics.prob)
            (List.rev_append e.Semantics.fired fired)
            (List.rev_append e.Semantics.completed completed)
            (cur :: rev_path) e.Semantics.dst (cur :: seen)
        | _ -> assert false (* multi-successor states are decision nodes *)
    in
    go first.Semantics.delay first.Semantics.prob
      (List.rev first.Semantics.fired)
      (List.rev first.Semantics.completed)
      [ src ] first.Semantics.dst []
  in
  let edges =
    List.concat_map (fun n -> List.map (collapse n) g.Semantics.out.(n)) nodes
  in
  Tpan_obs.Metrics.Counter.add m_nodes (List.length nodes);
  Tpan_obs.Metrics.Counter.add m_edges (List.length edges);
  Tpan_obs.Metrics.Counter.add m_collapsed
    (max 0 (Array.length g.Semantics.states - List.length nodes));
  Tpan_obs.Trace.add_attr_int sp "nodes" (List.length nodes);
  Tpan_obs.Trace.add_attr_int sp "edges" (List.length edges);
  { nodes; edges }

let out_edges dg n = List.filter (fun e -> e.src = n) dg.edges

let is_absorbing dg = List.exists (fun e -> match e.dst with Absorbed _ -> true | To _ -> false) dg.edges

let deterministic_cycle_of_graph ~add ~zero (g : ('t, 'p) Semantics.graph) =
  let n = Array.length g.Semantics.states in
  if n = 0 then None
  else begin
    let seen = Array.make n false in
    let rec go cur rev_path =
      if seen.(cur) then begin
        (* find the loop portion and re-accumulate its delay *)
        let path = List.rev rev_path in
        let rec split = function
          | [] -> []
          | x :: rest -> if x = cur then x :: rest else split rest
        in
        let cycle = split path in
        let delay = ref zero in
        let rec walk = function
          | [] -> ()
          | x :: rest ->
            (match g.Semantics.out.(x) with
             | [ e ] -> delay := add !delay e.Semantics.delay
             | _ -> ());
            walk rest
        in
        walk cycle;
        Some (!delay, cycle)
      end
      else begin
        seen.(cur) <- true;
        match g.Semantics.out.(cur) with
        | [] -> None
        | [ e ] -> go e.Semantics.dst (cur :: rev_path)
        | _ -> invalid_arg "deterministic_cycle_of_graph: graph has decision nodes"
      end
    in
    go 0 []
  end

let pp ~pp_delay ~pp_prob fmt dg =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "decision nodes: %s@,"
    (String.concat ", " (List.map (fun i -> string_of_int (i + 1)) dg.nodes));
  List.iteri
    (fun k e ->
      let dst = match e.dst with To j -> string_of_int (j + 1) | Absorbed j -> Printf.sprintf "terminal %d" (j + 1) in
      Format.fprintf fmt "edge %d: %d -> %s  p=%a  d=%a@," (k + 1) (e.src + 1) dst pp_prob
        e.prob pp_delay e.delay)
    dg.edges;
  Format.pp_close_box fmt ()

let to_dot ~pp_delay ~pp_prob dg =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escape s =
    String.concat ""
      (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  pr "digraph decision_graph {\n";
  List.iter (fun n -> pr "  n%d [shape=diamond, label=\"%d\"];\n" n (n + 1)) dg.nodes;
  List.iter
    (fun e ->
      let label =
        Format.asprintf "%a / %a" pp_prob e.prob pp_delay e.delay |> escape
      in
      match e.dst with
      | To d -> pr "  n%d -> n%d [label=\"%s\"];\n" e.src d label
      | Absorbed d ->
        pr "  term%d [shape=doublecircle, label=\"%d\"];\n" d (d + 1);
        pr "  n%d -> term%d [label=\"%s\"];\n" e.src d label)
    dg.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let collapse_result ~add ~mul g =
  match of_graph ~add ~mul g with
  | dg -> Ok dg
  | exception Deterministic_cycle cycle ->
    Error (Tpan_core.Error.Deterministic_cycle cycle)
