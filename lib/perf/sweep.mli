(** Parallel parameter-sweep engine.

    A sweep evaluates performance measures over the cartesian grid of one
    or more {!axis} ranges. Grid points are laid out row-major (last axis
    varies fastest) and evaluated on a {!Tpan_par.Pool}; because each point
    is an independent exact-ℚ analysis and results land in input order, the
    sweep table — and its CSV/JSON renderings — are byte-identical for any
    jobs count.

    Two evaluation modes:
    - {!over_tpn}: rebuild a concrete net per point and run the full
      decision-graph analysis (the expensive, always-available path);
    - {!over_expr}: evaluate pre-derived closed-form symbolic measures at
      each point (cheap — this is the paper's main selling point for
      symbolic derivation). *)

module Q = Tpan_mathkit.Q
module Error = Tpan_core.Error

type axis = { name : string; lo : Q.t; hi : Q.t; steps : int }
(** [steps] grid points spread evenly (exactly, in ℚ) over [lo..hi]
    inclusive; [steps = 1] degenerates to the single point [lo]. *)

val parse_axis : string -> (axis, string) result
(** Parse a ["NAME=LO..HI:STEPS"] grid spec (e.g. ["timeout=80..200:8"]).
    Values take the same decimal/rational syntax as [-p] bindings. *)

val axis_values : axis -> Q.t list

val points : axis list -> (string * Q.t) list list
(** Row-major cartesian product: the last axis varies fastest. Each point
    is an association list in axis order. *)

type row = {
  point : (string * Q.t) list;
  values : (string * Q.t) list;  (** column name → value; [[]] on error *)
  error : Error.t option;
}

type t = { axes : axis list; columns : string list; rows : row list }

val over_tpn :
  ?jobs:int ->
  ?max_states:int ->
  make:((string * Q.t) list -> Tpan_core.Tpn.t) ->
  throughputs:string list ->
  axis list ->
  t
(** For each grid point, build a fresh net with [make point], run the
    timed-reachability + decision-graph + rate analysis, and record
    [thr(t)] for each transition in [throughputs] plus [mean_cycle_time].
    Failures ([make] rejecting a parameter, state-budget overflow,
    unsolvable rates, …) are captured per row, so one bad point doesn't
    lose the grid. *)

val over_expr :
  ?jobs:int ->
  bindings:(string * Q.t) list ->
  exprs:(string * Tpan_symbolic.Ratfun.t) list ->
  axis list ->
  t
(** For each grid point, evaluate each named closed-form measure at
    [bindings ∪ point] (point wins on clashes). Axis names are variable
    display names (["E(t3)"], ["f(t4)"], …). *)

val to_csv : t -> string
(** Header then one line per row: point coordinates, then columns (empty
    cells on error), then an [error] column. Deterministic. *)

val to_json : t -> Tpan_obs.Jsonv.t
(** Versioned machine output ([{"schema": 1, "kind": "sweep", …}]). *)

val pp : Format.formatter -> t -> unit
(** Aligned human-readable table. *)
