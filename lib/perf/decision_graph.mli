(** Decision graphs (paper §2, Figure 5): the timed reachability graph
    collapsed onto its decision nodes.

    Decision nodes are the states with more than one successor. Every
    maximal chain of single-successor states between two decision nodes
    becomes one edge, whose delay is the sum of the chain's delays and whose
    probability is the branching probability of its first step.

    Works for both concrete and symbolic graphs (delay/probability types are
    polymorphic; the caller supplies the accumulation operators). *)

module Net = Tpan_petri.Net
module Semantics = Tpan_core.Semantics

type target =
  | To of int  (** the decision node reached *)
  | Absorbed of int  (** a terminal state reached: the system halts *)

type ('t, 'p) dedge = {
  src : int;  (** decision-node state index in the underlying graph *)
  dst : target;
  delay : 't;  (** accumulated along the collapsed path *)
  prob : 'p;
  path : int list;  (** state indices traversed, [src … dst] inclusive *)
  fired : Net.trans list;  (** every transition that began firing en route *)
  completed : Net.trans list;
}

type ('t, 'p) t = {
  nodes : int list;  (** decision-node state indices *)
  edges : ('t, 'p) dedge list;
}

exception Deterministic_cycle of int list
(** A walk from a decision node entered a cycle containing no decision node:
    the system becomes deterministic forever and the decision-graph
    abstraction does not apply (analyse it with
    {!deterministic_cycle_of_graph} instead). *)

val of_graph :
  add:('t -> 't -> 't) ->
  mul:('p -> 'p -> 'p) ->
  ('t, 'p) Semantics.graph ->
  ('t, 'p) t
(** @raise Deterministic_cycle — see above. *)

val out_edges : ('t, 'p) t -> int -> ('t, 'p) dedge list
val is_absorbing : ('t, 'p) t -> bool

val deterministic_cycle_of_graph :
  add:('t -> 't -> 't) -> zero:'t -> ('t, 'p) Semantics.graph ->
  ('t * int list) option
(** For graphs with {e no} decision node: follow the unique run from the
    initial state; [Some (cycle_time, cycle_states)] if it loops, [None] if
    it terminates. *)

val pp :
  pp_delay:(Format.formatter -> 't -> unit) ->
  pp_prob:(Format.formatter -> 'p -> unit) ->
  Format.formatter ->
  ('t, 'p) t ->
  unit

val to_dot :
  pp_delay:(Format.formatter -> 't -> unit) ->
  pp_prob:(Format.formatter -> 'p -> unit) ->
  ('t, 'p) t ->
  string
(** Graphviz rendering: decision nodes as diamonds, edges labelled
    [p / d]. *)

val collapse_result :
  add:('t -> 't -> 't) ->
  mul:('p -> 'p -> 'p) ->
  ('t, 'p) Semantics.graph ->
  (('t, 'p) t, Tpan_core.Error.t) result
(** {!of_graph} with [Deterministic_cycle] returned as a value. *)
