(** Exponential-delay (Markovian) interpretation of a timed net — the
    competing analysis style the paper cites (Molloy's integration of delay
    and throughput measures via Markov chains).

    Each transition's delay is reinterpreted as an exponential distribution
    whose mean is [E(t) + F(t)]; enabled transitions race memorylessly, so
    the marking process is a continuous-time Markov chain over the {e
    untimed} reachability graph. Transition rates are
    [(frequency / Σ conflict-set frequencies) / (E + F)]: a lone transition
    keeps rate [1/mean], a weighted conflict pair with equal means races at
    the combined rate [1/mean] split by the weights (preserving both the
    sojourn time and the branching probabilities), and a zero frequency
    silences a transition (the deterministic model's priority has no
    Markovian counterpart). With {e unequal} means in a conflict set the
    branching necessarily distorts — exponential races cannot reproduce
    mean-independent branching; that gap is part of what the comparison
    demonstrates.

    Comparing this chain's predictions with the exact deterministic
    analysis quantifies what the exponential assumption costs — e.g. a
    deterministic pipeline outperforms its Markovian reading, because the
    mean of a maximum of exponentials exceeds the maximum of the means. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net

type t = {
  graph : Tpan_petri.Reachability.graph;  (** untimed marking graph *)
  rates : Q.t array;  (** per transition *)
}

val build : ?max_states:int -> Tpan_core.Tpn.t -> t
(** @raise Tpan_core.Tpn.Unsupported on symbolic nets or zero-mean
    transitions (infinite rate)
    @raise Tpan_petri.Reachability.State_limit if the untimed net exceeds
    the budget (it may be unbounded even when the timed net is safe) *)

val steady_state : t -> Q.t array
(** Stationary distribution over the marking graph (exact, sums to 1).
    @raise Rates.Unsolvable if the chain is absorbing or reducible in a way
    that prevents a unique stationary distribution. *)

val throughput : t -> steady:Q.t array -> Net.trans -> Q.t
(** Long-run firings of the transition per unit time:
    [Σ_m π(m)·rate(t)·[t enabled in m]]. *)

val mean_tokens : t -> steady:Q.t array -> Net.place -> Q.t

val erlang_expand : stages:int -> Tpan_core.Tpn.t -> Tpan_core.Tpn.t
(** Replace every positive-delay transition by a chain of [stages]
    transitions of mean [delay/stages] each: under the exponential reading
    the end-to-end delay becomes Erlang-[stages] (same mean, variance
    shrinking as 1/stages). As [stages] grows, the Markovian analysis of
    the expanded net converges to the deterministic result — quantifying
    how much of the exponential gap is pure variance. Only singleton
    conflict sets are expanded; a transition in a non-trivial conflict set
    keeps one stage (its race semantics must be preserved).
    @raise Tpan_core.Tpn.Unsupported on symbolic nets. *)

val build_result : ?max_states:int -> Tpan_core.Tpn.t -> (t, Tpan_core.Error.t) result
(** {!build} with its failure modes ([Unsupported], [State_limit]) returned
    as values. *)
