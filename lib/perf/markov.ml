let stationary ~probs ?(iterations = 100_000) ?(tolerance = 1e-14) (dg : _ Decision_graph.t) =
  let nodes = Array.of_list dg.Decision_graph.nodes in
  let k = Array.length nodes in
  if k = 0 then failwith "Markov.stationary: no decision nodes";
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i n -> Hashtbl.add pos n i) nodes;
  let step =
    List.filter_map
      (fun (e : _ Decision_graph.dedge) ->
        match e.dst with
        | Decision_graph.To n -> Some (Hashtbl.find pos e.src, Hashtbl.find pos n, probs e)
        | Decision_graph.Absorbed _ -> failwith "Markov.stationary: absorbing chain")
      dg.Decision_graph.edges
  in
  let pi = Array.make k (1. /. float_of_int k) in
  let next = Array.make k 0. in
  (* Damped iteration [pi' = a·P·pi + (1-a)·pi]: the fixed points are
     exactly those of plain power iteration (pi = P·pi), but the damping
     makes the effective chain aperiodic, so periodic graphs (e.g. a
     2-cycle decision graph, where plain iteration oscillates between two
     distributions forever) still converge to the stationary vector. *)
  let damping = 0.9 in
  let rec iterate n =
    if n = 0 then failwith "Markov.stationary: did not converge";
    Array.fill next 0 k 0.;
    List.iter (fun (i, j, p) -> next.(j) <- next.(j) +. (pi.(i) *. p)) step;
    Array.iteri (fun i x -> next.(i) <- (damping *. x) +. ((1. -. damping) *. pi.(i))) next;
    (* renormalize to damp float drift *)
    let s = Array.fold_left ( +. ) 0. next in
    Array.iteri (fun i x -> next.(i) <- x /. s) next;
    let delta = ref 0. in
    Array.iteri (fun i x -> delta := Float.max !delta (Float.abs (x -. pi.(i)))) next;
    Array.blit next 0 pi 0 k;
    if !delta > tolerance then iterate (n - 1)
  in
  iterate iterations;
  Array.to_list (Array.mapi (fun i p -> (nodes.(i), p)) pi)

let throughput ~probs ~delays (dg : _ Decision_graph.t) ~count =
  let pi = stationary ~probs dg in
  let pi_of n = List.assoc n pi in
  let num = ref 0. and den = ref 0. in
  List.iter
    (fun (e : _ Decision_graph.dedge) ->
      let r = pi_of e.src *. probs e in
      num := !num +. (r *. float_of_int (count e));
      den := !den +. (r *. delays e))
    dg.Decision_graph.edges;
  !num /. !den
