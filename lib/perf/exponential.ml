module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Reach = Tpan_petri.Reachability
module Tpn = Tpan_core.Tpn

type t = { graph : Reach.graph; rates : Q.t array }

let build ?max_states tpn =
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Exponential.build: net has symbolic times or frequencies");
  let net = Tpn.net tpn in
  (* Frequencies are *relative* weights within a conflict set; normalize by
     the set total so that a lone transition keeps rate 1/mean and a
     weighted pair with equal means splits the races by the weights. *)
  let cs_total =
    Array.map
      (fun members ->
        List.fold_left (fun acc t -> Q.add acc (Tpn.frequency_q tpn t)) Q.zero members)
      (Tpn.conflict_sets tpn)
  in
  let rates =
    Array.init (Net.num_transitions net) (fun t ->
        let mean = Q.add (Tpn.enabling_q tpn t) (Tpn.firing_q tpn t) in
        if Q.is_zero mean then
          raise
            (Tpn.Unsupported
               (Printf.sprintf
                  "Exponential.build: transition %s has zero mean delay (infinite rate)"
                  (Net.trans_name net t)));
        let total = cs_total.(Tpn.conflict_set_of tpn t) in
        if Q.is_zero total then Q.zero
        else Q.div (Q.div (Tpn.frequency_q tpn t) total) mean)
  in
  let graph = Reach.explore ?max_states net in
  { graph; rates }

module QS = Tpan_mathkit.Sparse.Make (struct
  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let is_zero = Q.is_zero
  let add = Q.add
  let sub = Q.sub
  let mul = Q.mul
  let div = Q.div
  let pp = Q.pp
end)

let steady_state c =
  let n = Reach.num_states c.graph in
  (* Generator: Q[i][j] = Σ rates of transitions i -> j; Q[i][i] = -Σ out.
     Balance: π·Q = 0 with Σ π = 1; we replace the first balance column by
     the normalization row. The balance system is as sparse as the
     reachability graph (a state has a handful of successors), so it is
     assembled directly in sparse row form — equation [j] holds column [j]
     of the generator — and never materialized densely. Duplicate (row,
     col) contributions are summed by the solver; ℚ addition is exact and
     commutative, so the entries (and hence the solution) are bit-identical
     to the old dense assembly. *)
  let rows = Array.make n [] in
  Array.iteri
    (fun i succs ->
      List.iter
        (fun (t, j) ->
          let r = c.rates.(t) in
          if not (Q.is_zero r) then begin
            rows.(j) <- (i, r) :: rows.(j);
            rows.(i) <- (i, Q.neg r) :: rows.(i)
          end)
        succs)
    c.graph.Reach.edges;
  rows.(0) <- List.init n (fun j -> (j, Q.one));
  let b = Array.make n Q.zero in
  b.(0) <- Q.one;
  match QS.solve_rows ~ncols:n rows b with
  | QS.Unique pi -> pi
  | QS.Underdetermined -> raise (Rates.Unsolvable "exponential chain is reducible")
  | QS.Inconsistent -> raise (Rates.Unsolvable "exponential chain has no stationary distribution")

let throughput c ~steady t =
  let acc = ref Q.zero in
  Array.iteri
    (fun i m ->
      if Marking.enabled c.graph.Reach.net m t then
        acc := Q.add !acc (Q.mul steady.(i) c.rates.(t)))
    c.graph.Reach.states;
  !acc

let erlang_expand ~stages tpn =
  if stages < 1 then invalid_arg "Exponential.erlang_expand: stages must be >= 1";
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Exponential.erlang_expand: net has symbolic times");
  let src = Tpn.net tpn in
  let b = Net.builder (Printf.sprintf "%s_erlang%d" (Net.name src) stages) in
  let init = Net.initial_marking src in
  List.iter (fun p -> ignore (Net.add_place b ~init:init.(p) (Net.place_name src p))) (Net.places src);
  let expandable t =
    stages > 1
    && List.length (Tpn.conflict_sets tpn).(Tpn.conflict_set_of tpn t) = 1
    && Q.sign (Q.add (Tpn.enabling_q tpn t) (Tpn.firing_q tpn t)) > 0
  in
  let specs = ref [] in
  List.iter
    (fun t ->
      let name = Net.trans_name src t in
      let total = Q.add (Tpn.enabling_q tpn t) (Tpn.firing_q tpn t) in
      if not (expandable t) then begin
        ignore (Net.add_transition b ~name ~inputs:(Net.inputs src t) ~outputs:(Net.outputs src t));
        specs :=
          ( name,
            Tpn.spec
              ~enabling:(Tpn.Fixed (Tpn.enabling_q tpn t))
              ~firing:(Tpn.Fixed (Tpn.firing_q tpn t))
              ~frequency:(Tpn.Freq (Tpn.frequency_q tpn t))
              () )
          :: !specs
      end
      else begin
        let stage_mean = Q.div total (Q.of_int stages) in
        let bufs =
          Array.init (stages - 1) (fun i -> Net.add_place b (Printf.sprintf "%s__s%d" name (i + 1)))
        in
        for i = 0 to stages - 1 do
          let stage_name = if i = 0 then name else Printf.sprintf "%s__%d" name i in
          let inputs = if i = 0 then Net.inputs src t else [ (bufs.(i - 1), 1) ] in
          let outputs = if i = stages - 1 then Net.outputs src t else [ (bufs.(i), 1) ] in
          ignore (Net.add_transition b ~name:stage_name ~inputs ~outputs);
          specs := (stage_name, Tpn.spec ~firing:(Tpn.Fixed stage_mean) ()) :: !specs
        done
      end)
    (Net.transitions src);
  Tpn.make (Net.build b) !specs

let mean_tokens c ~steady p =
  let acc = ref Q.zero in
  Array.iteri
    (fun i m -> acc := Q.add !acc (Q.mul steady.(i) (Q.of_int (Marking.tokens m p))))
    c.graph.Reach.states;
  !acc

let build_result ?max_states tpn = Errors.wrap (fun () -> build ?max_states tpn)
