module Q = Tpan_mathkit.Q
module Rf = Tpan_symbolic.Ratfun

type 'f field = {
  zero : 'f;
  one : 'f;
  is_zero : 'f -> bool;
  add : 'f -> 'f -> 'f;
  sub : 'f -> 'f -> 'f;
  mul : 'f -> 'f -> 'f;
  div : 'f -> 'f -> 'f;
  pp : Format.formatter -> 'f -> unit;
}

let q_field =
  { zero = Q.zero; one = Q.one; is_zero = Q.is_zero; add = Q.add; sub = Q.sub; mul = Q.mul;
    div = Q.div; pp = Q.pp }

let ratfun_field =
  { zero = Rf.zero; one = Rf.one; is_zero = Rf.is_zero; add = Rf.add; sub = Rf.sub;
    mul = Rf.mul; div = Rf.div; pp = Rf.pp }

let float_field =
  { zero = 0.; one = 1.; is_zero = (fun x -> Float.abs x < 1e-12); add = ( +. );
    sub = ( -. ); mul = ( *. ); div = ( /. );
    pp = (fun fmt x -> Format.fprintf fmt "%g" x) }

type ('t, 'p, 'f) result = {
  dg : ('t, 'p) Decision_graph.t;
  field : 'f field;
  normalized_at : int;
  visit_rate : int -> 'f;
  edge_rate : ('t, 'p, 'f) rated_edge list;
  total_weight : 'f;
}

and ('t, 'p, 'f) rated_edge = {
  edge : ('t, 'p) Decision_graph.dedge;
  rate : 'f;
  weight : 'f;
}

exception Unsolvable of string

(* Strong connectivity of the decision graph (ignoring absorbed edges).
   The balance equations have a one-dimensional kernel exactly for
   irreducible chains; checking up front turns a cryptic singular-matrix
   failure into an actionable message naming the disconnected nodes. *)
let strongly_connected (dg : _ Decision_graph.t) =
  match dg.Decision_graph.nodes with
  | [] -> true
  | first :: _ ->
    let targets_of n =
      List.filter_map
        (fun (e : _ Decision_graph.dedge) ->
          match e.Decision_graph.dst with
          | Decision_graph.To d when e.Decision_graph.src = n -> Some d
          | _ -> None)
        dg.Decision_graph.edges
    in
    let sources_of n =
      List.filter_map
        (fun (e : _ Decision_graph.dedge) ->
          match e.Decision_graph.dst with
          | Decision_graph.To d when d = n -> Some e.Decision_graph.src
          | _ -> None)
        dg.Decision_graph.edges
    in
    let reach step =
      let seen = Hashtbl.create 8 in
      let rec go n =
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          List.iter go (step n)
        end
      in
      go first;
      seen
    in
    let fwd = reach targets_of and bwd = reach sources_of in
    List.for_all (fun n -> Hashtbl.mem fwd n && Hashtbl.mem bwd n) dg.Decision_graph.nodes

let m_solves = Tpan_obs.Metrics.counter "perf.rates.solves"

let solve (type f) ~(field : f field) ~embed_prob ~embed_delay ?normalize_at
    (dg : ('t, 'p) Decision_graph.t) : ('t, 'p, f) result =
  Tpan_obs.Trace.with_span "rates.solve" @@ fun sp ->
  Tpan_obs.Metrics.Counter.incr m_solves;
  Tpan_obs.Trace.add_attr_int sp "nodes" (List.length dg.Decision_graph.nodes);
  let nodes = Array.of_list dg.Decision_graph.nodes in
  let k = Array.length nodes in
  if k = 0 then raise (Unsolvable "no decision nodes (deterministic system)");
  if Decision_graph.is_absorbing dg then
    raise (Unsolvable "absorbing decision graph: the system can halt, steady-state rates do not exist");
  if not (strongly_connected dg) then
    raise
      (Unsolvable
         (Printf.sprintf
            "decision graph over nodes {%s} is not strongly connected: no unique steady state"
            (String.concat ", "
               (List.map (fun n -> string_of_int (n + 1)) dg.Decision_graph.nodes))));
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i n -> Hashtbl.add pos n i) nodes;
  let n0 = match normalize_at with Some n -> n | None -> nodes.(0) in
  let i0 =
    match Hashtbl.find_opt pos n0 with
    | Some i -> i
    | None -> raise (Unsolvable "normalize_at is not a decision node")
  in
  let module F = struct
    type t = f

    let zero = field.zero
    let one = field.one
    let is_zero = field.is_zero
    let add = field.add
    let sub = field.sub
    let mul = field.mul
    let div = field.div
    let pp = field.pp
  end in
  let module LS = Tpan_mathkit.Sparse.Make (F) in
  (* Balance equations v(n) = Σ_{e: dst = n} p_e · v(src e); the row for the
     normalization node is replaced by v(n0) = 1. *)
  let a = Array.init k (fun _ -> Array.make k field.zero) in
  let b = Array.make k field.zero in
  for i = 0 to k - 1 do
    if i = i0 then begin
      a.(i).(i0) <- field.one;
      b.(i) <- field.one
    end
    else begin
      a.(i).(i) <- field.one;
      List.iter
        (fun (e : _ Decision_graph.dedge) ->
          match e.dst with
          | Decision_graph.To n when n = nodes.(i) ->
            let j = Hashtbl.find pos e.src in
            a.(i).(j) <- field.sub a.(i).(j) (embed_prob e.prob)
          | _ -> ())
        dg.Decision_graph.edges
    end
  done;
  let v =
    match LS.solve a b with
    | LS.Unique v -> v
    | LS.Underdetermined ->
      raise (Unsolvable "rate equations underdetermined: decision graph not strongly connected")
    | LS.Inconsistent -> raise (Unsolvable "rate equations inconsistent")
  in
  let visit_rate n =
    match Hashtbl.find_opt pos n with
    | Some i -> v.(i)
    | None -> raise (Unsolvable "visit_rate: not a decision node")
  in
  let edge_rate =
    List.map
      (fun (e : _ Decision_graph.dedge) ->
        let r = field.mul (embed_prob e.prob) (visit_rate e.src) in
        { edge = e; rate = r; weight = field.mul r (embed_delay e.delay) })
      dg.Decision_graph.edges
  in
  let total_weight = List.fold_left (fun acc re -> field.add acc re.weight) field.zero edge_rate in
  { dg; field; normalized_at = n0; visit_rate; edge_rate; total_weight }
