(* Perf-level exception classification: extends [Tpan_core.Error.of_exn]
   with the exceptions defined in this library. The facade's
   [Tpan.Error.of_exn] adds the parser layer on top of this. *)

module Error = Tpan_core.Error

let of_exn = function
  | Rates.Unsolvable msg -> Some (Error.Unsolvable msg)
  | Decision_graph.Deterministic_cycle cycle -> Some (Error.Deterministic_cycle cycle)
  | e -> Error.of_exn e

let wrap f = match f () with v -> Ok v | exception e -> (
  match of_exn e with Some err -> Error err | None -> raise e)
