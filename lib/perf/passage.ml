module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Sem = Tpan_core.Semantics
module Tpn = Tpan_core.Tpn

let mean_time_to_event (type f) ~(field : f Rates.field) ~embed_prob ~embed_delay
    (g : ('t, 'p) Sem.graph) ~start ~event : f option =
  let n = Array.length g.Sem.states in
  if start < 0 || start >= n then invalid_arg "Passage.mean_time_to_event: bad start";
  (* States from which the event is almost-surely reached: a state is good
     if every... for expectations we need: from every state reachable from
     [start] there is no escape into a sub-graph where the event can never
     happen. First compute [can]: states with SOME path to an event edge;
     if a state reachable from start has an edge into a component that
     cannot reach the event, the expectation diverges — detect by requiring
     every reachable state to satisfy [can]. (A transient positive-
     probability escape also diverges; full almost-sure analysis reduces to
     this check for the exact chains we build, where all probabilities are
     positive on existing edges.) *)
  let can = Array.make n false in
  (* reverse reachability from event edges *)
  let incoming = Array.make n [] in
  Array.iter
    (fun edges ->
      List.iter (fun (e : _ Sem.edge) -> incoming.(e.Sem.dst) <- e.Sem.src :: incoming.(e.Sem.dst)) edges)
    g.Sem.out;
  let queue = Queue.create () in
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : _ Sem.edge) ->
          if event e && not can.(e.Sem.src) then begin
            can.(e.Sem.src) <- true;
            Queue.add e.Sem.src queue
          end)
        edges)
    g.Sem.out;
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    List.iter
      (fun p ->
        if not can.(p) then begin
          can.(p) <- true;
          Queue.add p queue
        end)
      incoming.(s)
  done;
  (* forward reachability from start, stopping at event edges *)
  let reach = Array.make n false in
  let queue = Queue.create () in
  reach.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    List.iter
      (fun (e : _ Sem.edge) ->
        if (not (event e)) && not reach.(e.Sem.dst) then begin
          reach.(e.Sem.dst) <- true;
          Queue.add e.Sem.dst queue
        end)
      g.Sem.out.(s)
  done;
  let relevant = List.filter (fun s -> reach.(s)) (List.init n Fun.id) in
  if List.exists (fun s -> not can.(s)) relevant || relevant = [] then None
  else begin
    (* index the relevant states *)
    let idx = Array.make n (-1) in
    List.iteri (fun i s -> idx.(s) <- i) relevant;
    let k = List.length relevant in
    let a = Array.init k (fun _ -> Array.make k field.Rates.zero) in
    let b = Array.make k field.Rates.zero in
    List.iteri
      (fun i s ->
        a.(i).(i) <- field.Rates.one;
        List.iter
          (fun (e : _ Sem.edge) ->
            let p = embed_prob e.Sem.prob in
            b.(i) <- field.Rates.add b.(i) (field.Rates.mul p (embed_delay e.Sem.delay));
            if not (event e) then begin
              let j = idx.(e.Sem.dst) in
              a.(i).(j) <- field.Rates.sub a.(i).(j) p
            end)
          g.Sem.out.(s))
      relevant;
    let module F = struct
      type t = f

      let zero = field.Rates.zero
      let one = field.Rates.one
      let is_zero = field.Rates.is_zero
      let add = field.Rates.add
      let sub = field.Rates.sub
      let mul = field.Rates.mul
      let div = field.Rates.div
      let pp = field.Rates.pp
    end in
    let module LS = Tpan_mathkit.Sparse.Make (F) in
    match LS.solve a b with
    | LS.Unique h -> Some h.(idx.(start))
    | LS.Underdetermined | LS.Inconsistent -> None
  end

let concrete_latency g ?(start = 0) ~event () =
  mean_time_to_event ~field:Rates.q_field ~embed_prob:Fun.id ~embed_delay:Fun.id g ~start ~event

let symbolic_latency g ?(start = 0) ~event () =
  let embed_delay e = Tpan_symbolic.Ratfun.of_poly (Tpan_symbolic.Poly.of_linexpr e) in
  Option.map Tpan_symbolic.Ratfun.reduce
    (mean_time_to_event ~field:Rates.ratfun_field ~embed_prob:Fun.id ~embed_delay g ~start ~event)

let completion_event tpn name =
  let t = Net.trans_of_name (Tpn.net tpn) name in
  fun (e : _ Sem.edge) -> List.mem t e.Sem.completed

let firing_event tpn name =
  let t = Net.trans_of_name (Tpn.net tpn) name in
  fun (e : _ Sem.edge) -> List.mem t e.Sem.fired
