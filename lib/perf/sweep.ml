module Q = Tpan_mathkit.Q
module Error = Tpan_core.Error
module CG = Tpan_core.Concrete
module J = Tpan_obs.Jsonv

type axis = { name : string; lo : Q.t; hi : Q.t; steps : int }

let parse_axis spec =
  let fail () =
    Error (Printf.sprintf "bad grid spec %S (expected NAME=LO..HI:STEPS)" spec)
  in
  match String.index_opt spec '=' with
  | None -> fail ()
  | Some eq -> (
    let name = String.trim (String.sub spec 0 eq) in
    let rhs = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    match String.index_opt rhs ':' with
    | None -> fail ()
    | Some colon -> (
      let range = String.sub rhs 0 colon in
      let steps_s = String.sub rhs (colon + 1) (String.length rhs - colon - 1) in
      match
        let dots =
          let rec find i =
            if i + 1 >= String.length range then None
            else if range.[i] = '.' && range.[i + 1] = '.' then Some i
            else find (i + 1)
          in
          find 0
        in
        dots
      with
      | None -> fail ()
      | Some d -> (
        let lo_s = String.trim (String.sub range 0 d) in
        let hi_s = String.trim (String.sub range (d + 2) (String.length range - d - 2)) in
        match
          ( Q.of_decimal_string lo_s,
            Q.of_decimal_string hi_s,
            int_of_string_opt (String.trim steps_s) )
        with
        | lo, hi, Some steps when name <> "" && steps >= 1 && Q.compare lo hi <= 0 ->
          Ok { name; lo; hi; steps }
        | _ -> fail ()
        | exception Invalid_argument _ -> fail ())))

let axis_values a =
  if a.steps <= 1 then [ a.lo ]
  else
    let span = Q.sub a.hi a.lo in
    let denom = Q.of_int (a.steps - 1) in
    List.init a.steps (fun k -> Q.add a.lo (Q.div (Q.mul span (Q.of_int k)) denom))

let points axes =
  List.fold_right
    (fun a acc ->
      List.concat_map (fun v -> List.map (fun tail -> (a.name, v) :: tail) acc) (axis_values a))
    axes [ [] ]

type row = {
  point : (string * Q.t) list;
  values : (string * Q.t) list;
  error : Error.t option;
}

type t = { axes : axis list; columns : string list; rows : row list }

(* Per-point failures become row errors; a genuinely unclassifiable
   exception is a bug and propagates. *)
let classify e =
  match Errors.of_exn e with
  | Some err -> err
  | None -> (
    match e with
    | Invalid_argument msg | Failure msg -> Error.Invalid_input msg
    | Not_found -> Error.Invalid_input "unknown variable in sweep point"
    | Division_by_zero -> Error.Unsolvable "division by zero while evaluating measure"
    | e -> raise e)

let qs q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let rows_of_results pts results =
  List.map2
    (fun point r ->
      match r with
      | Ok values -> { point; values; error = None }
      | Error (e : Tpan_par.Pool.error) ->
        let err = classify e.exn in
        Tpan_obs.Log.warn "sweep point failed"
          ~fields:
            [
              ("index", Tpan_obs.Jsonv.Int e.index);
              ( "point",
                Tpan_obs.Jsonv.Obj
                  (List.map (fun (k, v) -> (k, Tpan_obs.Jsonv.Raw (qs v))) point) );
              ("error", Tpan_obs.Jsonv.Str (Error.to_string err));
            ];
        { point; values = []; error = Some err })
    pts results

(* every grid point traces as its own span (in its worker's lane when the
   pool fans out), labelled with its row-major index *)
let spanned name eval (i, point) =
  Tpan_obs.Trace.with_span name (fun sp ->
      Tpan_obs.Trace.add_attr_int sp "index" i;
      eval point)

let indexed pts = List.mapi (fun i p -> (i, p)) pts

let over_tpn ?jobs ?max_states ~make ~throughputs axes =
  let columns = List.map (fun t -> "thr(" ^ t ^ ")") throughputs @ [ "mean_cycle_time" ] in
  let pts = points axes in
  let eval point =
    let tpn = make point in
    let g = CG.build ?max_states tpn in
    let r = Measures.Concrete.analyze g in
    List.map2
      (fun col t -> (col, Measures.Concrete.throughput r g t))
      (List.map (fun t -> "thr(" ^ t ^ ")") throughputs)
      throughputs
    @ [ ("mean_cycle_time", Measures.mean_cycle_time r) ]
  in
  let results = Tpan_par.Pool.try_map ?jobs (spanned "sweep.point" eval) (indexed pts) in
  { axes; columns; rows = rows_of_results pts results }

let over_expr ?jobs ~bindings ~exprs axes =
  let columns = List.map fst exprs in
  let pts = points axes in
  let eval point =
    (* the point's coordinates shadow any clashing fixed binding *)
    let env = point @ bindings in
    List.map (fun (name, rf) -> (name, Measures.Symbolic.eval_at rf env)) exprs
  in
  let results = Tpan_par.Pool.try_map ?jobs (spanned "sweep.point" eval) (indexed pts) in
  { axes; columns; rows = rows_of_results pts results }

(* ---------------- rendering ---------------- *)

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let b = Buffer.create 1024 in
  let axis_names = List.map (fun a -> a.name) t.axes in
  Buffer.add_string b (String.concat "," (List.map csv_cell (axis_names @ t.columns @ [ "error" ])));
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      let coords = List.map (fun (_, v) -> qf v) r.point in
      let cells =
        List.map
          (fun col -> match List.assoc_opt col r.values with Some v -> qf v | None -> "")
          t.columns
      in
      let err =
        match r.error with
        | None -> ""
        | Some e ->
          String.concat "; " (String.split_on_char '\n' (Error.to_string e))
      in
      Buffer.add_string b (String.concat "," (List.map csv_cell (coords @ cells @ [ err ])));
      Buffer.add_char b '\n')
    t.rows;
  Buffer.contents b

let to_json t =
  J.Obj
    [
      ("schema", J.Int 1);
      ("kind", J.Str "sweep");
      ( "axes",
        J.List
          (List.map
             (fun a ->
               J.Obj
                 [
                   ("name", J.Str a.name);
                   ("lo", J.Raw (qf a.lo));
                   ("hi", J.Raw (qf a.hi));
                   ("steps", J.Int a.steps);
                 ])
             t.axes) );
      ("columns", J.List (List.map (fun c -> J.Str c) t.columns));
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("point", J.Obj (List.map (fun (k, v) -> (k, J.Raw (qf v))) r.point));
                   ("values", J.Obj (List.map (fun (k, v) -> (k, J.Raw (qf v))) r.values));
                   ( "error",
                     match r.error with
                     | None -> J.Null
                     | Some e -> J.Str (Error.to_string e) );
                 ])
             t.rows) );
    ]

let pp fmt t =
  let axis_names = List.map (fun a -> a.name) t.axes in
  let headers = axis_names @ t.columns in
  let width = List.fold_left (fun w h -> max w (String.length h)) 12 headers + 2 in
  Format.pp_open_vbox fmt 0;
  List.iter (fun h -> Format.fprintf fmt "%-*s" width h) headers;
  Format.pp_print_cut fmt ();
  List.iter
    (fun r ->
      List.iter (fun (_, v) -> Format.fprintf fmt "%-*s" width (qf v)) r.point;
      (match r.error with
       | None ->
         List.iter
           (fun col ->
             let cell =
               match List.assoc_opt col r.values with Some v -> qf v | None -> ""
             in
             Format.fprintf fmt "%-*s" width cell)
           t.columns
       | Some e -> Format.fprintf fmt "error: %s" (Error.to_string e));
      Format.pp_print_cut fmt ())
    t.rows;
  Format.pp_close_box fmt ()
