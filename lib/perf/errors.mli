(** Exception → {!Tpan_core.Error.t} classification for the perf layer. *)

module Error = Tpan_core.Error

val of_exn : exn -> Error.t option
(** Classifies [Rates.Unsolvable] and [Decision_graph.Deterministic_cycle],
    then falls back to {!Tpan_core.Error.of_exn}. [None] for genuine bugs. *)

val wrap : (unit -> 'a) -> ('a, Error.t) result
(** Run the thunk, catching exactly the exceptions {!of_exn} classifies;
    anything else propagates. *)
