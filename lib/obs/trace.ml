type span = {
  sp_name : string;
  sp_start : float;
  sp_depth : int;
  mutable sp_attrs : (string * string) list;
  sp_real : bool;
}

type event = {
  name : string;
  start : float;
  dur : float;
  depth : int;
  lane : int;
  attrs : (string * string) list;
}

let enabled_flag = ref false

let set_enabled b =
  enabled_flag := b;
  Metrics.set_timing b

let enabled () = !enabled_flag

(* Span starts are stored relative to this process-level epoch so the
   exported microsecond timestamps stay small enough for exact float
   representation.

   Nesting depth and the lane id are tracked per domain (a worker's spans
   start at depth 0 in its own lane); the completed-event list is shared,
   so pushes are mutex-protected. *)
let t0 = Mclock.now ()
let cur_depth : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let cur_lane : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let completed : event list ref = ref []
let completed_count = ref 0
let completed_lock = Mutex.create ()

(* Retention bound on the completed-event buffer: a long-running server
   traces every request, so without a cap the buffer is a slow leak.
   0 = unbounded (the CLI default — a run exports its whole trace at
   exit). Trimming is amortized: the list is rebuilt only once the
   count reaches twice the cap. *)
let retention = ref 0
let set_retention n = Mutex.protect completed_lock (fun () -> retention := max 0 n)

let push_completed e =
  Mutex.protect completed_lock (fun () ->
      completed := e :: !completed;
      incr completed_count;
      let cap = !retention in
      if cap > 0 && !completed_count >= 2 * cap then begin
        let rec take n = function
          | x :: tl when n > 0 -> x :: take (n - 1) tl
          | _ -> []
        in
        completed := take cap !completed;
        completed_count := cap
      end)
let dummy = { sp_name = ""; sp_start = 0.; sp_depth = 0; sp_attrs = []; sp_real = false }

let set_lane k = Domain.DLS.get cur_lane := k
let current_lane () = !(Domain.DLS.get cur_lane)

(* Active span stacks are maintained even with tracing disabled: the
   diagnostic dump must be able to say where each domain is at the
   moment of a deadline/stall, and those are exactly the runs that
   rarely enable full tracing. The always-on cost is a DLS load plus a
   list cons per span — spans mark stages, not inner-loop iterations,
   so this is noise. The registry holds each domain's (lane, stack)
   refs; reads from other domains are racy but single-word, good
   enough for diagnostics. *)
type dstack = { ds_lane : int ref; ds_stack : string list ref }

let stacks : dstack list ref = ref []
let stacks_lock = Mutex.create ()

let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st = ref [] in
      let ds = { ds_lane = Domain.DLS.get cur_lane; ds_stack = st } in
      Mutex.protect stacks_lock (fun () -> stacks := ds :: !stacks);
      st)

let span_stacks () =
  List.rev_map (fun ds -> (!(ds.ds_lane), !(ds.ds_stack))) !stacks
  |> List.sort compare

let with_span name f =
  let stack = Domain.DLS.get stack_key in
  stack := name :: !stack;
  let pop () = match !stack with _ :: tl -> stack := tl | [] -> () in
  if not !enabled_flag then Fun.protect ~finally:pop (fun () -> f dummy)
  else begin
    let depth = Domain.DLS.get cur_depth in
    let sp =
      { sp_name = name; sp_start = Mclock.now () -. t0; sp_depth = !depth;
        sp_attrs = []; sp_real = true }
    in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        pop ();
        decr depth;
        let dur = Mclock.now () -. t0 -. sp.sp_start in
        let attrs =
          match Context.trace_id () with
          | Some id -> ("trace_id", id) :: List.rev sp.sp_attrs
          | None -> List.rev sp.sp_attrs
        in
        let e =
          { name = sp.sp_name; start = sp.sp_start; dur; depth = sp.sp_depth;
            lane = current_lane (); attrs }
        in
        push_completed e)
      (fun () -> f sp)
  end

let add_attr sp k v = if sp.sp_real then sp.sp_attrs <- (k, v) :: sp.sp_attrs
let add_attr_int sp k v = add_attr sp k (string_of_int v)

let events () = List.rev !completed

let clear () =
  Mutex.protect completed_lock (fun () ->
      completed := [];
      completed_count := 0)

(* Remove and return the completed events belonging to one request —
   the per-request span tree the serving layer hands to [Tracez].
   Events of other (concurrent) requests stay buffered. *)
let take_events ~trace_id =
  Mutex.protect completed_lock (fun () ->
      let mine, rest =
        List.partition
          (fun e ->
            match List.assoc_opt "trace_id" e.attrs with
            | Some id -> id = trace_id
            | None -> false)
          !completed
      in
      completed := rest;
      completed_count := List.length rest;
      List.rev mine)

let total_duration name =
  List.fold_left (fun acc e -> if e.name = name then acc +. e.dur else acc) 0. !completed

let stage_totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let dur, n = match Hashtbl.find_opt tbl e.name with Some x -> x | None -> (0., 0) in
      Hashtbl.replace tbl e.name (dur +. e.dur, n + 1))
    !completed;
  Hashtbl.fold (fun name (dur, n) acc -> (name, dur, n) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* ---------------- NDJSON export ---------------- *)

let escape = Jsonv.escape

let write_event out e =
  Printf.fprintf out
    "{\"name\":\"%s\",\"cat\":\"tpan\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":\"%d\""
    (escape e.name) e.lane (e.start *. 1e6) (e.dur *. 1e6) e.depth;
  List.iter (fun (k, v) -> Printf.fprintf out ",\"%s\":\"%s\"" (escape k) (escape v)) e.attrs;
  Printf.fprintf out "}}\n"

(* Completion order depends on domain scheduling; sorting by (lane,
   start, depth) makes the exported line order a function of what ran
   where, not of when the mutex was won. *)
let write_ndjson out =
  let evs =
    List.sort
      (fun a b -> compare (a.lane, a.start, a.depth) (b.lane, b.start, b.depth))
      (events ())
  in
  List.iter (write_event out) evs

(* ---------------- NDJSON parser ---------------- *)

let parse_line line =
  match Jsonv.of_string (String.trim line) with
  | Error _ -> None
  | Ok doc -> (
    let open Jsonv in
    match
      ( Option.bind (member "name" doc) to_string_opt,
        Option.bind (member "ts" doc) to_float_opt,
        Option.bind (member "dur" doc) to_float_opt )
    with
    | Some name, Some ts, Some dur ->
      let lane =
        match Option.bind (member "tid" doc) to_int_opt with Some t -> t | None -> 0
      in
      let args =
        match member "args" doc with
        | Some (Obj o) ->
          List.filter_map (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None) o
        | _ -> []
      in
      let depth =
        match List.assoc_opt "depth" args with
        | Some d -> (match int_of_string_opt d with Some i -> i | None -> 0)
        | None -> 0
      in
      let attrs = List.filter (fun (k, _) -> k <> "depth") args in
      Some { name; start = ts /. 1e6; dur = dur /. 1e6; depth; lane; attrs }
    | _ -> None)

(* ---------------- tree renderer ---------------- *)

let pp_tree fmt () =
  let evs = List.sort (fun a b -> compare (a.lane, a.start) (b.lane, b.start)) (events ()) in
  Format.pp_open_vbox fmt 0;
  List.iter
    (fun e ->
      let indent = String.make (2 * e.depth) ' ' in
      let attrs =
        match e.attrs with
        | [] -> ""
        | l -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      in
      let lane = if e.lane = 0 then "" else Printf.sprintf " [lane %d]" e.lane in
      Format.fprintf fmt "%s%-*s %9.3f ms%s%s@," indent
        (max 1 (34 - 2 * e.depth))
        e.name (e.dur *. 1000.) attrs lane)
    evs;
  Format.pp_close_box fmt ()
