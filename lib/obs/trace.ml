type span = {
  sp_name : string;
  sp_start : float;
  sp_depth : int;
  mutable sp_attrs : (string * string) list;
  sp_real : bool;
}

type event = {
  name : string;
  start : float;
  dur : float;
  depth : int;
  attrs : (string * string) list;
}

let enabled_flag = ref false

let set_enabled b =
  enabled_flag := b;
  Metrics.set_timing b

let enabled () = !enabled_flag

(* Span starts are stored relative to this process-level epoch so the
   exported microsecond timestamps stay small enough for exact float
   representation.

   Nesting depth is tracked per domain (a worker's spans start at depth 0);
   the completed-event list is shared, so pushes are mutex-protected. *)
let t0 = Mclock.now ()
let cur_depth : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let completed : event list ref = ref []
let completed_lock = Mutex.create ()
let dummy = { sp_name = ""; sp_start = 0.; sp_depth = 0; sp_attrs = []; sp_real = false }

let with_span name f =
  if not !enabled_flag then f dummy
  else begin
    let depth = Domain.DLS.get cur_depth in
    let sp =
      { sp_name = name; sp_start = Mclock.now () -. t0; sp_depth = !depth;
        sp_attrs = []; sp_real = true }
    in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = Mclock.now () -. t0 -. sp.sp_start in
        let e =
          { name = sp.sp_name; start = sp.sp_start; dur; depth = sp.sp_depth;
            attrs = List.rev sp.sp_attrs }
        in
        Mutex.protect completed_lock (fun () -> completed := e :: !completed))
      (fun () -> f sp)
  end

let add_attr sp k v = if sp.sp_real then sp.sp_attrs <- (k, v) :: sp.sp_attrs
let add_attr_int sp k v = add_attr sp k (string_of_int v)

let events () = List.rev !completed
let clear () = completed := []

let total_duration name =
  List.fold_left (fun acc e -> if e.name = name then acc +. e.dur else acc) 0. !completed

(* ---------------- NDJSON export ---------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_event out e =
  Printf.fprintf out
    "{\"name\":\"%s\",\"cat\":\"tpan\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":\"%d\""
    (escape e.name) (e.start *. 1e6) (e.dur *. 1e6) e.depth;
  List.iter (fun (k, v) -> Printf.fprintf out ",\"%s\":\"%s\"" (escape k) (escape v)) e.attrs;
  Printf.fprintf out "}}\n"

let write_ndjson out = List.iter (write_event out) (events ())

(* ---------------- NDJSON parser ----------------

   Minimal recursive-descent parser for the flat objects [write_event]
   emits (strings, numbers, one level of nested object). No JSON library
   is available in the toolchain, and this keeps the round-trip testable
   without one. *)

exception Bad

type json = Str of string | Num of float | Obj of (string * json) list

let parse_json_obj s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad;
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        let e = peek () in
        advance ();
        (match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then raise Bad;
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> raise Bad)
         | _ -> raise Bad);
        loop ()
      | c ->
        Buffer.add_char b c;
        loop ()
    in
    loop ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' -> Obj (parse_obj ())
    | _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos = start then raise Bad;
      (match float_of_string_opt (String.sub s start (!pos - start)) with
       | Some f -> Num f
       | None -> raise Bad)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ((k, v) :: acc)
        | '}' ->
          advance ();
          List.rev ((k, v) :: acc)
        | _ -> raise Bad
      in
      members []
    end
  in
  let o = parse_obj () in
  skip_ws ();
  if !pos <> n then raise Bad;
  o

let parse_line line =
  match parse_json_obj (String.trim line) with
  | exception Bad -> None
  | exception Invalid_argument _ -> None
  | fields -> (
    try
      let str k = match List.assoc k fields with Str s -> s | _ -> raise Bad in
      let num k = match List.assoc k fields with Num f -> f | _ -> raise Bad in
      let name = str "name" in
      let start = num "ts" /. 1e6 in
      let dur = num "dur" /. 1e6 in
      let args =
        match List.assoc_opt "args" fields with
        | Some (Obj o) ->
          List.filter_map (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None) o
        | _ -> []
      in
      let depth =
        match List.assoc_opt "depth" args with
        | Some d -> (match int_of_string_opt d with Some i -> i | None -> 0)
        | None -> 0
      in
      let attrs = List.filter (fun (k, _) -> k <> "depth") args in
      Some { name; start; dur; depth; attrs }
    with Bad | Not_found -> None)

(* ---------------- tree renderer ---------------- *)

let pp_tree fmt () =
  let evs = List.sort (fun a b -> compare a.start b.start) (events ()) in
  Format.pp_open_vbox fmt 0;
  List.iter
    (fun e ->
      let indent = String.make (2 * e.depth) ' ' in
      let attrs =
        match e.attrs with
        | [] -> ""
        | l -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      in
      Format.fprintf fmt "%s%-*s %9.3f ms%s@," indent
        (max 1 (34 - 2 * e.depth))
        e.name (e.dur *. 1000.) attrs)
    evs;
  Format.pp_close_box fmt ()
