(** Latency-bucketed ring buffers of recent request span trees — the
    data behind a server's [GET /tracez] page, à la gRPC tracez.

    The serving layer records one {!entry} per finished request. Entries
    are grouped by method name and land in the ring chosen by their
    latency (error responses additionally land in a dedicated error
    ring), so the page always retains a few recent examples of {e every}
    latency class: the slow tail is never flushed out by a burst of fast
    requests. Memory is bounded by
    [methods × (buckets + 1 + 1) × per_bucket] entries.

    Thread-safe; {!record} takes a mutex once per request. *)

type entry = {
  trace_id : string;  (** owning request's {!Context.trace_id} *)
  name : string;  (** method label, e.g. ["POST /eval"] *)
  status : int;  (** HTTP status (or an exit code for non-HTTP users) *)
  start : float;  (** Unix epoch seconds *)
  dur : float;  (** seconds *)
  slow : bool;  (** crossed the server's slow-request threshold *)
  spans : Trace.event list;
      (** the request's completed span tree, from {!Trace.take_events} *)
}

val default_bounds : float array
(** Latency bucket upper bounds in seconds: 1ms, 10ms, 100ms, 1s
    (five buckets including the overflow). *)

val configure : ?bounds:float array -> ?per_bucket:int -> unit -> unit
(** Replace bucket bounds and/or per-ring capacity (default 16) —
    drops all recorded entries. *)

val record : entry -> unit

type bucket_view = {
  label : string;  (** e.g. ["<1ms"], ["10ms-100ms"], [">=1s"], ["error"] *)
  seen : int;  (** entries ever recorded in this ring, not just retained *)
  entries : entry list;  (** retained entries, newest first *)
}

val snapshot : unit -> (string * bucket_view list * bucket_view) list
(** Per method name (sorted): latency buckets in ascending-bound order,
    then the error ring. *)

val bucket_labels : unit -> string list

val to_json : unit -> Jsonv.t
(** The whole page:
    [{"schema":1,"buckets":[…],"methods":[{"name","buckets":[{"bucket",
    "seen","entries":[{"trace_id","status","start","duration_s","slow",
    "spans":[…]}]}],"errors":{…}}]}]. *)

val clear : unit -> unit
