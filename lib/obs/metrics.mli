(** Metrics registry: named counters, gauges and latency histograms shared
    by the whole pipeline.

    Counters and gauges are plain mutable ints/floats — one store per
    update, cheap enough to leave permanently on in every hot loop.
    Histogram {e timing} (the only part that touches the clock or
    allocates) is gated behind a global switch ({!set_timing}) that
    defaults to off, so an uninstrumented run pays nothing beyond the
    integer bumps.

    Naming convention: [<lib>.<module>.<metric>], e.g.
    [mathkit.fm.eliminations], [core.semantics.states_interned],
    [symbolic.oracle.memo_hits]. The registry is global and process-wide;
    metrics registered by library initialization appear in {!snapshot}
    with zero values until first touched.

    {b Labels.} A metric may be registered with a label set
    ({!counter_with}, {!gauge_with}, {!histogram_with}); series sharing a
    family name but differing in labels are distinct cells grouped under
    one family in the OpenMetrics export — the serving layer's
    per-endpoint RED metrics. Keep label cardinality bounded (endpoints,
    error classes — never raw paths or ids). *)

type exemplar = { ex_value : float; ex_trace_id : string; ex_ts : float }
(** A sampled observation pinned to its request: the value, the owning
    request's {!Context.trace_id}, and the wall-clock instant. The
    OpenMetrics export attaches it to the bucket the value landed in, so
    a scraper can jump from a slow bucket straight to the trace. *)

val default_buckets : float array
(** Cumulative-bucket upper bounds (seconds) used when a histogram is
    created without explicit buckets: 0.5ms … 10s, roughly
    logarithmic. *)

module Counter : sig
  type t

  val create : unit -> t
  (** A standalone (unregistered) counter — e.g. per-instance statistics
      that also feed a registered aggregate. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit

  val set_max : t -> float -> unit
  (** Keep the maximum of the current and the given value. *)

  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : ?cap:int -> ?buckets:float array -> unit -> t
  (** [cap] (default 8192) bounds the stored sample window: beyond it, new
      observations overwrite the oldest slots round-robin, while [count],
      [sum], [max_value] and the bucket counts stay exact over the full
      stream. [buckets] (default {!default_buckets}) are the explicit
      cumulative-bucket upper bounds; strictly increasing, +Inf implied
      last. *)

  val observe : ?trace_id:string -> t -> float -> unit
  (** Record an observation. With [trace_id], the bucket the value lands
      in remembers it as its latest {!exemplar} (one wall-clock read —
      pass it on request paths, not in inner loops). *)

  val count : t -> int
  val sum : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h q] with [q] in [\[0, 1\]]: nearest-rank percentile over
      the stored window. [nan] when empty. *)

  val reset : t -> unit
end

(** {1 Timing switch} *)

val set_timing : bool -> unit
(** Enable clock reads for {!time}. Off by default. *)

val timing_on : unit -> bool

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk; when timing is on, observe its wall duration (seconds)
    into the histogram (also on exceptional exit). When off, just runs the
    thunk. Call sites on hot paths should guard with {!timing_on} to avoid
    even the closure allocation. *)

(** {1 Registry} *)

val counter : string -> Counter.t
(** Find-or-create the registered counter of that name.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> Gauge.t
val histogram : ?buckets:float array -> string -> Histogram.t

val counter_with : string -> (string * string) list -> Counter.t
(** [counter_with name labels] — find-or-create the series of family
    [name] with exactly [labels] (order-insensitive; they are sorted).
    The series appears in {!snapshot} as [name{k="v",…}]. *)

val gauge_with : string -> (string * string) list -> Gauge.t
val histogram_with : ?buckets:float array -> string -> (string * string) list -> Histogram.t

type bucket = { le : float; cumulative : int; exemplar : exemplar option }
(** One cumulative bucket: observations [<= le] ([le] is [infinity] for
    the overflow bucket), and the latest exemplar that landed in this
    bucket's bin, if any observation carried a trace id. *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
      max : float;
      buckets : bucket list;
    }

val snapshot : ?all:bool -> unit -> (string * value) list
(** Every registered metric, sorted by (labelled) series name. With
    [~all:false], histograms that were never observed (count 0 — e.g.
    latency histograms when timing is off) are omitted; counters and
    gauges always appear, zero or not. Default [true]. *)

val find : string -> value option
(** Look up by full series name — [name] for unlabelled metrics,
    [name{k="v"}] (labels sorted by key) for labelled ones. *)

val counter_value : string -> int
(** Value of a registered counter; [0] when absent (or not a counter). *)

val reset_all : unit -> unit
(** Zero every registered metric (standalone counters are untouched). *)

(** {1 Per-domain delta buffers}

    Worker domains must not race on the shared cells. A worker calls
    {!Local.install} before running tasks; from then on every update made
    on that domain lands in a domain-local buffer. When the worker is done
    it calls {!Local.collect} and hands the buffer to the joining domain,
    which folds it into the global registry with {!merge_deltas}.
    [Tpan_par.Pool] does all of this automatically.

    Merge semantics: counters add their deltas (totals are therefore
    independent of scheduling); gauges merge by maximum (the gauges touched
    on parallel paths are peaks — in a worker, [Gauge.set] behaves like
    [Gauge.set_max]); histograms replay their buffered observations
    (exemplar trace ids included). *)

module Local : sig
  type deltas

  val install : unit -> unit
  (** Redirect this domain's metric updates into a fresh buffer. *)

  val collect : unit -> deltas
  (** Detach and return the buffer, restoring direct updates.
      @raise Invalid_argument if no buffer is installed. *)
end

val merge_deltas : Local.deltas -> unit
(** Fold a collected buffer into the global cells (call after join). *)

val pp_table : ?all:bool -> Format.formatter -> unit -> unit
(** Human-readable two-column table of {!snapshot}. [all] as in
    {!snapshot}; defaults to [false] (untouched histograms omitted). *)

(** {1 Machine exposition} *)

val to_json : ?all:bool -> unit -> Jsonv.t
(** The snapshot as a JSON array of
    [{"name", "kind", …value fields…}] objects (the shape
    [BENCH_tpan.json] uses). Histograms carry their touched buckets
    (cumulative counts, exemplar trace ids). [all] defaults to
    [false]. *)

val to_openmetrics : ?all:bool -> unit -> string
(** OpenMetrics 1.0 text exposition of the snapshot. Metric names are
    sanitized ([.] and other non-name characters become [_]) and
    prefixed with [tpan_]; counters expose a [_total] sample per
    labelled series, gauges a plain sample, histograms an OpenMetrics
    [histogram] family: explicit cumulative [_bucket{le="…"}] samples
    (exemplars attached as [# {trace_id="…"} value ts]), then [_count]
    and [_sum]. Families with several label sets emit one [# TYPE]
    line. Ends with [# EOF]. [all] defaults to [false]. *)
