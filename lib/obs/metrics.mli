(** Metrics registry: named counters, gauges and latency histograms shared
    by the whole pipeline.

    Counters and gauges are plain mutable ints/floats — one store per
    update, cheap enough to leave permanently on in every hot loop.
    Histogram {e timing} (the only part that touches the clock or
    allocates) is gated behind a global switch ({!set_timing}) that
    defaults to off, so an uninstrumented run pays nothing beyond the
    integer bumps.

    Naming convention: [<lib>.<module>.<metric>], e.g.
    [mathkit.fm.eliminations], [core.semantics.states_interned],
    [symbolic.oracle.memo_hits]. The registry is global and process-wide;
    metrics registered by library initialization appear in {!snapshot}
    with zero values until first touched. *)

module Counter : sig
  type t

  val create : unit -> t
  (** A standalone (unregistered) counter — e.g. per-instance statistics
      that also feed a registered aggregate. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit

  val set_max : t -> float -> unit
  (** Keep the maximum of the current and the given value. *)

  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] (default 8192) bounds the stored sample window: beyond it, new
      observations overwrite the oldest slots round-robin, while [count],
      [sum] and [max_value] stay exact over the full stream. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h q] with [q] in [\[0, 1\]]: nearest-rank percentile over
      the stored window. [nan] when empty. *)

  val reset : t -> unit
end

(** {1 Timing switch} *)

val set_timing : bool -> unit
(** Enable clock reads for {!time}. Off by default. *)

val timing_on : unit -> bool

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk; when timing is on, observe its wall duration (seconds)
    into the histogram (also on exceptional exit). When off, just runs the
    thunk. Call sites on hot paths should guard with {!timing_on} to avoid
    even the closure allocation. *)

(** {1 Registry} *)

val counter : string -> Counter.t
(** Find-or-create the registered counter of that name.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max : float }

val snapshot : ?all:bool -> unit -> (string * value) list
(** Every registered metric, sorted by name. With [~all:false],
    histograms that were never observed (count 0 — e.g. latency
    histograms when timing is off) are omitted; counters and gauges
    always appear, zero or not. Default [true]. *)

val find : string -> value option

val counter_value : string -> int
(** Value of a registered counter; [0] when absent (or not a counter). *)

val reset_all : unit -> unit
(** Zero every registered metric (standalone counters are untouched). *)

(** {1 Per-domain delta buffers}

    Worker domains must not race on the shared cells. A worker calls
    {!Local.install} before running tasks; from then on every update made
    on that domain lands in a domain-local buffer. When the worker is done
    it calls {!Local.collect} and hands the buffer to the joining domain,
    which folds it into the global registry with {!merge_deltas}.
    [Tpan_par.Pool] does all of this automatically.

    Merge semantics: counters add their deltas (totals are therefore
    independent of scheduling); gauges merge by maximum (the gauges touched
    on parallel paths are peaks — in a worker, [Gauge.set] behaves like
    [Gauge.set_max]); histograms replay their buffered observations. *)

module Local : sig
  type deltas

  val install : unit -> unit
  (** Redirect this domain's metric updates into a fresh buffer. *)

  val collect : unit -> deltas
  (** Detach and return the buffer, restoring direct updates.
      @raise Invalid_argument if no buffer is installed. *)
end

val merge_deltas : Local.deltas -> unit
(** Fold a collected buffer into the global cells (call after join). *)

val pp_table : ?all:bool -> Format.formatter -> unit -> unit
(** Human-readable two-column table of {!snapshot}. [all] as in
    {!snapshot}; defaults to [false] (untouched histograms omitted). *)

(** {1 Machine exposition} *)

val to_json : ?all:bool -> unit -> Jsonv.t
(** The snapshot as a JSON array of
    [{"name", "kind", …value fields…}] objects (the shape
    [BENCH_tpan.json] uses). [all] defaults to [false]. *)

val to_openmetrics : ?all:bool -> unit -> string
(** OpenMetrics 1.0 text exposition of the snapshot. Metric names are
    sanitized ([.] and other non-name characters become [_]) and
    prefixed with [tpan_]; counters expose a single [_total] sample,
    gauges a plain sample, histograms an OpenMetrics [summary] family
    ([_count], [_sum] and [quantile]-labelled samples). Ends with
    [# EOF]. [all] defaults to [false]. *)
