(* Wall-clock time in seconds. [Unix.gettimeofday] is the finest-grained
   clock the stdlib + unix expose (~1 us); spans and stage timings live in
   the millisecond range, so that resolution is ample. [Sys.time] is CPU
   time and would hide blocking, so it is deliberately not used here. *)

let now = Unix.gettimeofday
