(** Flight-recorder frames: diagnostic snapshots of a running analysis,
    and the watchdog domain that takes them.

    A {!frame} captures, at one instant: every domain's active span
    stack ({!Trace.span_stacks} — maintained even with tracing off),
    per-domain checkpoint heartbeats ({!Cancel.heartbeats}), GC
    statistics, and the metrics registry. Frames round-trip through
    {!Jsonv} and append as NDJSON to a {e flight file}; [kind] is
    ["frame"] for the watchdog's periodic records and ["dump"] for
    event-driven ones (deadline, stall, [SIGUSR1]). [tpan top] renders
    either kind, live or replayed. *)

type frame = {
  ts : float;  (** wall clock, Unix epoch *)
  uptime : float;  (** seconds since process start (module load) *)
  kind : string;  (** ["frame"] (periodic) or ["dump"] (event) *)
  reason : string option;  (** for dumps: what triggered it *)
  trace_id : string option;
  spans : (int * string list) list;
      (** per lane, open spans innermost first *)
  progress : (int * int) list;  (** domain id, checkpoint heartbeats *)
  gc : (string * float) list;
  metrics : Jsonv.t;  (** {!Metrics.to_json} array *)
}

val snapshot : ?kind:string -> ?reason:string -> ?trace_id:string -> unit -> frame
(** Capture the current process state. [kind] defaults to ["frame"].
    [trace_id] overrides the ambient {!Context.trace_id} — needed when
    the snapshot is taken on a domain (e.g. the watchdog) that never had
    the request's context installed. *)

val to_json : frame -> Jsonv.t
val of_json : Jsonv.t -> frame option

val append : string -> frame -> (unit, string) result
(** Append one NDJSON line to the flight file ([O_APPEND]; concurrent
    appenders interleave whole lines). Creates the parent directory. *)

val load : string -> (frame list, string) result
(** All parseable frames, in file order. Missing file is [Ok \[\]];
    torn or foreign lines are skipped. *)

val progress_summary : frame -> (string * int) list
(** The partial-progress counters of the pipeline stages — interned
    states, edges, FM eliminations, simulator steps, … — extracted from
    the frame's metrics snapshot. Only counters that advanced appear. *)

val pp_frame : Format.formatter -> frame -> unit
(** Human-readable rendering: trigger, trace id, progress counters, one
    line per lane's span stack, heartbeats, GC headline. *)

(** {1 Watchdog}

    A dedicated domain that polls every [interval] seconds and:
    - writes a ["dump"] frame when {!install_sigusr1}'s flag is raised;
    - writes a ["dump"] frame when the checkpoint heartbeat sum has not
      advanced for [stall] seconds (once per stall episode);
    - cancels [token] when its deadline passes — covering loops wedged
      between checkpoints; the {!Cancel.set_on_cancel} hook is expected
      to write the deadline dump;
    - appends a periodic ["frame"] every [frame_every] seconds when
      [path] is given, for [tpan top] to tail. *)

type watchdog

val start_watchdog :
  ?interval:float ->
  ?stall:float ->
  ?frame_every:float ->
  ?path:string ->
  ?token:Cancel.token ->
  unit ->
  watchdog
(** [interval] defaults to 0.1s, [frame_every] to 1s; stall detection
    is off unless [stall] is given. *)

val stop_watchdog : watchdog -> unit
(** Signal the watchdog domain to exit and join it. *)

val install_sigusr1 : unit -> unit
(** Install a [SIGUSR1] handler that raises the watchdog's dump flag
    (the handler only sets an atomic; the watchdog does the IO). No-op
    on platforms without the signal. *)

val write_dump : ?trace_id:string -> string -> string -> unit
(** [write_dump path reason] appends a ["dump"] frame now (used by the
    cancellation hook and the CLI; failures are logged, not raised).
    [trace_id] pins the owning request's id when the caller may run on a
    context-less domain. *)
