(** Request-scoped context: trace/span ids, labels, and the
    cancellation token of the owning request.

    The CLI creates one context per invocation ([--deadline] puts a
    budget on its token); a future [tpan serve] creates one per request.
    Installing a context ({!set} / {!with_ctx}) also installs its token
    as the ambient {!Cancel} token, and [Tpan_par.Pool] re-installs the
    spawning domain's context inside every worker, so ids and deadlines
    follow the work across domains. *)

type t = {
  trace_id : string;  (** stable for the whole request *)
  span_id : string;  (** this hop; {!child} derives a fresh one *)
  labels : (string * string) list;
  token : Cancel.token;
}

val make :
  ?trace_id:string ->
  ?deadline:float ->
  ?labels:(string * string) list ->
  unit ->
  t
(** Fresh context. [deadline] is a relative budget in seconds for the
    embedded token. Ids are generated from time, pid, and a counter —
    unique per host, no randomness dependency. *)

val child : t -> t
(** Same trace id and token, fresh span id. *)

val set : t option -> unit
(** Install as this domain's current context (and its token as the
    ambient {!Cancel} token). *)

val current : unit -> t option

val with_ctx : t -> (unit -> 'a) -> 'a
(** Run the thunk under the context, restoring the previous context and
    ambient token afterwards (also on exceptions). *)

val trace_id : unit -> string option
(** The current context's trace id, if one is installed. *)

val token : unit -> Cancel.token option
