(* Latency-bucketed ring buffers of recent request span trees, à la
   gRPC's channelz/tracez pages. The serving layer records one entry
   per finished request; entries land in a per-method ring chosen by
   latency (plus a dedicated ring for error responses), so the page
   always holds a few recent examples of every latency class — the
   slow tail survives any burst of fast requests. Memory is bounded:
   methods × (buckets + 1) rings × per_bucket entries. *)

type entry = {
  trace_id : string;
  name : string;  (* "POST /eval" — the method/endpoint label *)
  status : int;
  start : float;  (* Unix epoch seconds *)
  dur : float;  (* seconds *)
  slow : bool;
  spans : Trace.event list;
}

type ring = { buf : entry option array; mutable pos : int; mutable total : int }

let make_ring n = { buf = Array.make (max 1 n) None; pos = 0; total = 0 }

let default_bounds = [| 0.001; 0.01; 0.1; 1.0 |]

type state = {
  bounds : float array;
  per_bucket : int;
  methods : (string, ring array * ring) Hashtbl.t;  (* latency rings, error ring *)
}

let state =
  ref { bounds = default_bounds; per_bucket = 16; methods = Hashtbl.create 8 }

let lock = Mutex.create ()

let configure ?bounds ?per_bucket () =
  Mutex.protect lock (fun () ->
      let s = !state in
      state :=
        {
          bounds = (match bounds with Some b -> b | None -> s.bounds);
          per_bucket = (match per_bucket with Some n -> max 1 n | None -> s.per_bucket);
          methods = Hashtbl.create 8;
        })

let clear () =
  Mutex.protect lock (fun () -> Hashtbl.reset !state.methods)

let bucket_label bounds i =
  let ms x =
    if x >= 1. then Printf.sprintf "%gs" x else Printf.sprintf "%gms" (x *. 1000.)
  in
  if i < Array.length bounds then
    if i = 0 then Printf.sprintf "<%s" (ms bounds.(0))
    else Printf.sprintf "%s-%s" (ms bounds.(i - 1)) (ms bounds.(i))
  else Printf.sprintf ">=%s" (ms bounds.(Array.length bounds - 1))

let bucket_labels () =
  let s = !state in
  List.init (Array.length s.bounds + 1) (bucket_label s.bounds)

let bin_of bounds x =
  let n = Array.length bounds in
  let rec go i = if i >= n || x <= bounds.(i) then i else go (i + 1) in
  go 0

let push ring e =
  ring.buf.(ring.pos) <- Some e;
  ring.pos <- (ring.pos + 1) mod Array.length ring.buf;
  ring.total <- ring.total + 1

let record e =
  Mutex.protect lock (fun () ->
      let s = !state in
      let rings, err_ring =
        match Hashtbl.find_opt s.methods e.name with
        | Some r -> r
        | None ->
          let r =
            ( Array.init (Array.length s.bounds + 1) (fun _ -> make_ring s.per_bucket),
              make_ring s.per_bucket )
          in
          Hashtbl.add s.methods e.name r;
          r
      in
      push rings.(bin_of s.bounds e.dur) e;
      if e.status >= 400 then push err_ring e)

(* newest first *)
let ring_entries r =
  let n = Array.length r.buf in
  List.filter_map
    (fun i -> r.buf.((r.pos - 1 - i + (2 * n)) mod n))
    (List.init n Fun.id)

type bucket_view = { label : string; seen : int; entries : entry list }

let snapshot () =
  Mutex.protect lock (fun () ->
      let s = !state in
      Hashtbl.fold
        (fun name (rings, err) acc ->
          let buckets =
            List.init (Array.length rings) (fun i ->
                {
                  label = bucket_label s.bounds i;
                  seen = rings.(i).total;
                  entries = ring_entries rings.(i);
                })
          in
          let errors =
            { label = "error"; seen = err.total; entries = ring_entries err }
          in
          (name, buckets, errors) :: acc)
        s.methods []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b))

let span_to_json (e : Trace.event) =
  Jsonv.Obj
    [
      ("name", Jsonv.Str e.Trace.name);
      ("start_s", Jsonv.Float e.Trace.start);
      ("dur_s", Jsonv.Float e.Trace.dur);
      ("depth", Jsonv.Int e.Trace.depth);
      ("lane", Jsonv.Int e.Trace.lane);
    ]

let entry_to_json e =
  Jsonv.Obj
    [
      ("trace_id", Jsonv.Str e.trace_id);
      ("name", Jsonv.Str e.name);
      ("status", Jsonv.Int e.status);
      ("start", Jsonv.Float e.start);
      ("duration_s", Jsonv.Float e.dur);
      ("slow", Jsonv.Bool e.slow);
      ("spans", Jsonv.List (List.map span_to_json e.spans));
    ]

let bucket_to_json b =
  Jsonv.Obj
    [
      ("bucket", Jsonv.Str b.label);
      ("seen", Jsonv.Int b.seen);
      ("entries", Jsonv.List (List.map entry_to_json b.entries));
    ]

let to_json () =
  let methods = snapshot () in
  Jsonv.Obj
    [
      ("schema", Jsonv.Int 1);
      ("buckets", Jsonv.List (List.map (fun l -> Jsonv.Str l) (bucket_labels ())));
      ( "methods",
        Jsonv.List
          (List.map
             (fun (name, buckets, errors) ->
               Jsonv.Obj
                 [
                   ("name", Jsonv.Str name);
                   ("buckets", Jsonv.List (List.map bucket_to_json buckets));
                   ("errors", bucket_to_json errors);
                 ])
             methods) );
    ]
