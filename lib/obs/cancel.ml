(* Cooperative cancellation tokens.

   A token is a single cross-domain cell: [None] while the request is
   live, [Some reason] once somebody cancelled it. Hot loops poll the
   ambient token with {!checkpoint}; the poll costs one [Domain.DLS]
   lookup and an [Atomic.get] (plus a clock read when the token carries
   a deadline), so it is cheap enough to leave permanently in the
   per-state / per-elimination loops. With no token installed — every
   run not under [--deadline] — the checkpoint is a DLS load and a
   [None] match.

   Checkpoints also bump a per-domain heartbeat counter. The watchdog
   reads the heartbeat sum to detect a stalled analysis (a loop that
   stopped reaching its checkpoints), and the diagnostic dump reports
   the per-domain counts as progress evidence. *)

type reason =
  | Deadline of float (* the configured budget, seconds *)
  | Stalled of float (* seconds without checkpoint progress *)
  | Interrupted of string (* signal name or explicit cancel *)

exception Cancelled of reason

let reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline of %gs exceeded" s
  | Stalled s -> Printf.sprintf "no checkpoint progress for %gs" s
  | Interrupted what -> "interrupted by " ^ what

type token = {
  state : reason option Atomic.t;
  deadline : float option; (* absolute Mclock instant *)
  budget : float option; (* the relative budget, for messages *)
}

let create ?deadline_in () =
  {
    state = Atomic.make None;
    deadline = Option.map (fun d -> Mclock.now () +. d) deadline_in;
    budget = deadline_in;
  }

let cancelled t = Atomic.get t.state
let deadline t = t.deadline
let budget t = t.budget

(* First-cancellation hook: fired exactly once per token, by whichever
   domain wins the CAS. The CLI registers a diagnostic-dump writer here
   so the dump is taken while every domain's span stack is still live —
   by the time the [Cancelled] exception reaches a handler the stacks
   have unwound. Hook exceptions are swallowed: cancellation must not
   fail because diagnostics did. *)
let on_cancel : (reason -> unit) option ref = ref None
let set_on_cancel f = on_cancel := f

let fire_hook r =
  match !on_cancel with
  | Some f -> ( try f r with _ -> ())
  | None -> ()

let cancel t r =
  if Atomic.compare_and_set t.state None (Some r) then fire_hook r

(* ---------------- ambient token + heartbeats ---------------- *)

(* Per-domain heartbeat counters, registered on first use. Entries of
   dead worker domains stay in the list but stop advancing, so the
   watchdog's "did the sum move" test still answers the right question
   and the dump can show where each domain got to. *)
type beat = { dom : int; count : int ref }

let beats : beat list ref = ref []
let beats_lock = Mutex.create ()

let beat_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let count = ref 0 in
      let b = { dom = (Domain.self () :> int); count } in
      Mutex.protect beats_lock (fun () -> beats := b :: !beats);
      count)

let heartbeats () =
  List.rev_map (fun b -> (b.dom, !(b.count))) !beats |> List.sort compare

let heartbeat_total () = List.fold_left (fun acc b -> acc + !(b.count)) 0 !beats

let active_key : token option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set t = Domain.DLS.get active_key := t
let current () = !(Domain.DLS.get active_key)

let with_token t f =
  let cell = Domain.DLS.get active_key in
  let saved = !cell in
  cell := Some t;
  Fun.protect ~finally:(fun () -> cell := saved) f

let checkpoint () =
  incr (Domain.DLS.get beat_key);
  match !(Domain.DLS.get active_key) with
  | None -> ()
  | Some t -> (
    match Atomic.get t.state with
    | Some r -> raise (Cancelled r)
    | None -> (
      match t.deadline with
      | Some dl when Mclock.now () >= dl ->
        let r = Deadline (Option.value ~default:0. t.budget) in
        cancel t r;
        (* another domain may have won the race with a different reason *)
        raise (Cancelled (Option.value ~default:r (Atomic.get t.state)))
      | _ -> ()))
