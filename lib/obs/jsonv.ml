type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let rec emit buf ~indent ~level v =
  let nl k =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Raw s -> Buffer.add_string buf s
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit buf ~indent ~level:(level + 1) x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then "\": " else "\":");
        emit buf ~indent ~level:(level + 1) x)
      fields;
    nl level;
    Buffer.add_char buf '}'

let to_buffer buf v = emit buf ~indent:false ~level:0 v

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_hum v =
  let buf = Buffer.create 256 in
  emit buf ~indent:true ~level:0 v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_fail of string

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c);
    incr pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      let c = peek () in
      incr pos;
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        let e = peek () in
        incr pos;
        (match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           let code = hex4 () in
           if code >= 0xD800 && code <= 0xDBFF then begin
             (* high surrogate: pair it with the following \uDC00-\uDFFF *)
             if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 add_utf8 b (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00))
               else fail "unpaired surrogate"
             end
             else fail "unpaired surrogate"
           end
           else if code >= 0xDC00 && code <= 0xDFFF then fail "unpaired surrogate"
           else add_utf8 b code
         | _ -> fail "bad escape");
        loop ()
      | c ->
        Buffer.add_char b c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    let fraction = ref false in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' | '+' | '-' ->
            fraction := true;
            true
          | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if not !fraction then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
    else
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            members ((k, v) :: acc)
          | '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            elements (v :: acc)
          | ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Raw r -> float_of_string_opt r
  | _ -> None

(* [int_of_float] on a value outside [min_int, max_int] is undefined
   behaviour, so integral floats must be range-checked first. [min_int]
   (-2^62) is exactly representable; [max_int] (2^62 - 1) is not, and the
   nearest float at that magnitude is 2^62 = -.(float min_int), which
   already overflows — hence the asymmetric bound. *)
let min_int_f = float_of_int min_int

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && f >= min_int_f && f < -.min_int_f ->
    Some (int_of_float f)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
