type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let rec emit buf ~indent ~level v =
  let nl k =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Raw s -> Buffer.add_string buf s
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit buf ~indent ~level:(level + 1) x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then "\": " else "\":");
        emit buf ~indent ~level:(level + 1) x)
      fields;
    nl level;
    Buffer.add_char buf '}'

let to_buffer buf v = emit buf ~indent:false ~level:0 v

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_hum v =
  let buf = Buffer.create 256 in
  emit buf ~indent:true ~level:0 v;
  Buffer.contents buf
