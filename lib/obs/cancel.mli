(** Cooperative deadline/cancellation tokens for long-running analyses.

    A {!token} is a cross-domain cancellation cell, optionally carrying
    an absolute deadline. Hot loops call {!checkpoint} at cheap,
    regular points (per interned state, per elimination round, every
    few thousand simulator steps); when the ambient token has been
    cancelled — or its deadline has passed — the checkpoint raises
    {!Cancelled} and the loop unwinds cleanly through its [Fun.protect]
    finalizers. With no ambient token (any run not under [--deadline])
    a checkpoint is one domain-local load and a [None] match.

    Tokens usually arrive through {!Context}, which installs the
    request context's token as the ambient one; [Tpan_par.Pool]
    propagates the context (and therefore the token) into worker
    domains, so a deadline crossing aborts every lane of a parallel
    stage. *)

type reason =
  | Deadline of float  (** the configured budget, in seconds *)
  | Stalled of float  (** seconds without checkpoint progress *)
  | Interrupted of string  (** signal name or explicit cancel *)

exception Cancelled of reason
(** Raised by {!checkpoint} once the ambient token is cancelled. Mapped
    to [Tpan_core.Error.Deadline_exceeded] (exit code 6) by the error
    classifiers. *)

val reason_to_string : reason -> string

type token

val create : ?deadline_in:float -> unit -> token
(** A live token. [deadline_in] is a relative budget in seconds,
    resolved against {!Mclock.now} at creation. *)

val cancel : token -> reason -> unit
(** Cancel the token (idempotent — the first reason wins). The winning
    call fires the {!set_on_cancel} hook before returning. *)

val cancelled : token -> reason option
val deadline : token -> float option
(** The absolute {!Mclock} instant of the deadline, when one was set. *)

val budget : token -> float option
(** The relative budget [deadline_in] was created with. *)

val set_on_cancel : (reason -> unit) option -> unit
(** Register a process-wide first-cancellation hook. It runs exactly
    once per token, on the domain that wins the cancellation race,
    {e before} [Cancelled] starts unwinding — so a diagnostic-dump
    writer registered here still sees every domain's live span stack.
    Hook exceptions are swallowed. *)

(** {1 Ambient token} *)

val set : token option -> unit
(** Install the calling domain's ambient token (domain-local). Usually
    called via [Context.set]; [Tpan_par.Pool] calls it in workers. *)

val current : unit -> token option

val with_token : token -> (unit -> 'a) -> 'a
(** Run the thunk with the token installed, restoring the previous
    ambient token afterwards (also on exceptions). *)

val checkpoint : unit -> unit
(** The cancellation poll. Bumps this domain's heartbeat counter, then:
    no ambient token — return; token cancelled — raise {!Cancelled};
    token deadline passed — cancel it (firing the hook) and raise. *)

(** {1 Heartbeats}

    Every checkpoint bumps a per-domain counter, registered on the
    domain's first checkpoint. The stall watchdog watches the sum; the
    diagnostic dump reports the per-domain values. *)

val heartbeats : unit -> (int * int) list
(** [(domain id, checkpoint count)] per domain that ever checkpointed,
    sorted by domain id. Racy reads — values may lag by a few counts. *)

val heartbeat_total : unit -> int
