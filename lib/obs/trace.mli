(** Hierarchical spans.

    A span records a named region of execution: wall-clock start and
    duration, string key/value attributes, and child spans. Tracing is
    off by default; when disabled, {!with_span} runs the thunk against a
    shared dummy span and records no event — no clock read; it still
    maintains the domain's active span stack (one list cons) so
    diagnostic dumps work on untraced runs.

    Completed root spans accumulate in an in-process buffer; export them
    with {!write_ndjson} (one Chrome-trace-compatible ["X"] event per
    line) or render them with {!pp_tree}.

    {b Domains.} The completed-event buffer is shared and
    mutex-protected, so spans closed on a worker domain land in the same
    merged trace as the caller's. Each event carries a {e lane} — 0 for
    the main domain, a small stable index for pool workers (set by
    [Tpan_par.Pool] via {!set_lane}) — exported as the Chrome [tid] so a
    parallel region renders as parallel tracks in the viewer. *)

type span

val set_enabled : bool -> unit
(** Also flips {!Metrics.set_timing} on/off so span-level and
    histogram-level timing stay consistent. *)

val enabled : unit -> bool

val with_span : string -> (span -> 'a) -> 'a
(** [with_span name f] runs [f sp] with a fresh span pushed on the
    current span stack; the span is closed (duration recorded, attached
    to its parent or to the root buffer) when [f] returns, including on
    exceptional exit. When tracing is disabled, [f] receives a dummy
    span and nothing is recorded. *)

val add_attr : span -> string -> string -> unit
(** Attach a key/value attribute. No-op on the dummy span. *)

val add_attr_int : span -> string -> int -> unit

(** {1 Lanes} *)

val set_lane : int -> unit
(** Set the current domain's lane id (domain-local; defaults to 0).
    [Tpan_par.Pool] gives worker [k] lane [k + 1], so lane assignment is
    deterministic per parallel region regardless of how many domains the
    process has ever spawned. *)

val current_lane : unit -> int

(** {1 Active span stacks}

    Maintained even with tracing disabled, so a diagnostic dump can
    report where every domain is at the instant of a deadline, stall,
    or [SIGUSR1] — those are exactly the runs that rarely enable full
    tracing. *)

val span_stacks : unit -> (int * string list) list
(** [(lane, open spans, innermost first)] for every domain that ever
    opened a span, sorted by lane. Reads of other domains' stacks are
    racy but safe — diagnostics-grade accuracy. *)

(** {1 Completed events} *)

type event = {
  name : string;
  start : float;  (** seconds since the trace epoch (module load) *)
  dur : float;  (** seconds *)
  depth : int;  (** 0 = root *)
  lane : int;  (** 0 = main domain; workers get small positive ids *)
  attrs : (string * string) list;
}

val events : unit -> event list
(** All completed spans, in completion order (children before their
    parent, since a parent closes last). *)

val clear : unit -> unit
(** Drop buffered events. Does not change {!enabled}. *)

val set_retention : int -> unit
(** Bound the completed-event buffer to roughly [n] events (oldest
    dropped first; trimming is amortized, so up to [2n] may be resident
    momentarily). [0] — the default — keeps everything, which is right
    for a CLI run that exports its trace at exit; a long-running server
    sets a cap so per-request tracing is not a slow leak. *)

val take_events : trace_id:string -> event list
(** Remove and return the buffered events whose [trace_id] attribute
    matches (completion order — children first). Events of other
    requests stay buffered. The serving layer drains each request's
    span tree into its [/tracez] ring buffers this way. *)

val total_duration : string -> float
(** Sum of [dur] over completed events with that name; [0.] if none. *)

val stage_totals : unit -> (string * float * int) list
(** Aggregate the buffered events by name: [(name, total seconds,
    count)], sorted by name. The per-stage breakdown the run ledger
    records. *)

(** {1 Export} *)

val write_ndjson : out_channel -> unit
(** One JSON object per line, Chrome trace event format: [ph:"X"],
    [ts]/[dur] in microseconds, [tid] = lane, attributes under [args].
    Events are sorted by (lane, start, depth) so the line order is
    reproducible. A Chrome trace viewer loads the file as a JSON array
    after wrapping, and line-based tools can stream it. *)

val parse_line : string -> event option
(** Parse one NDJSON line written by {!write_ndjson} back into an
    {!event} ([ts]/[dur] converted back to seconds; [depth] read from
    the exported [args], [lane] from [tid]). [None] on malformed
    input. *)

val pp_tree : Format.formatter -> unit -> unit
(** Human-readable indented tree of the buffered events with durations
    in milliseconds. *)
