(** Benchmark regression comparison.

    Reads two [BENCH_tpan.json] documents (a stored baseline and a fresh
    run), matches their per-figure wall times and GC words (major and
    minor heap — the latter gates allocation-heavy regressions in hot
    paths that never promote), and classifies every figure by ratio
    against two thresholds: warn at
    {!default_warn} (1.25x) and fail at {!default_fail} (2x). Baselines
    whose cost sits below a small noise floor are clamped before the
    ratio so trivial figures cannot flag on scheduler jitter.

    [tpan bench-diff] is a thin CLI over {!load_file},
    {!compare_figures} and the renderers; the bench harness writes the
    time series this gates ([BENCH_history.ndjson]). *)

type figure = { name : string; seconds : float; major_words : float; minor_words : float }
type verdict = Ok_v | Warn_v | Fail_v

type row = {
  name : string;
  base_seconds : float;
  cur_seconds : float;
  time_ratio : float;  (** current / baseline, floored denominators *)
  base_major_words : float;
  cur_major_words : float;
  major_words_ratio : float;
  base_minor_words : float;
  cur_minor_words : float;
  minor_words_ratio : float;
  verdict : verdict;  (** the worst of the three ratios' classes *)
}

type report = {
  rows : row list;  (** figures present in both documents, current order *)
  missing : string list;  (** in baseline, absent from current (≥ warn) *)
  added : string list;  (** new in current (informational) *)
  worst : verdict;
}

val default_warn : float
val default_fail : float
val verdict_to_string : verdict -> string

val figures_of_json : Jsonv.t -> (figure list, string) result
(** Extract the ["figures"] array of a parsed [BENCH_tpan.json]. *)

val load_file : string -> (figure list, string) result

val compare_figures :
  ?warn:float -> ?fail:float -> baseline:figure list -> current:figure list -> unit -> report

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Jsonv.t
