(** Leveled structured logging.

    A log record is a message plus typed key/value fields, stamped with
    the wall clock, a level and the emitting domain's trace lane. Records
    flow to pluggable {e sinks}; two are provided: a human-readable
    stderr renderer and an NDJSON writer (one JSON object per line,
    machine-parseable with {!Jsonv.of_string}).

    With no sinks installed (the default) the emit functions cost one
    branch — libraries can log unconditionally and stay silent until an
    application opts in.

    {b Domains.} Sinks are only ever driven from the domain that
    installed them. A pool worker calls {!Local.install} before running
    tasks; from then on its records accumulate in a domain-local buffer,
    which the joining domain collects ({!Local.collect}) and replays
    through the sinks ({!flush_records}) after the join —
    [Tpan_par.Pool] does all of this automatically, exactly as it does
    for {!Metrics} deltas. Records therefore never interleave mid-line,
    at the price of worker logs appearing at join time (their [ts] field
    keeps the true emission time). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option

type field = string * Jsonv.t

type record = {
  ts : float;  (** absolute wall-clock seconds (Unix epoch) *)
  level : level;
  msg : string;
  lane : int;  (** {!Trace.current_lane} of the emitting domain *)
  trace_id : string option;
      (** owning request's {!Context.trace_id}, when one is installed *)
  fields : field list;
}

(** {1 Emission} *)

val debug : ?fields:field list -> string -> unit
val info : ?fields:field list -> string -> unit
val warn : ?fields:field list -> string -> unit
val error : ?fields:field list -> string -> unit

val enabled : level -> bool
(** True when a record at that level would reach at least one sink —
    guard field construction on hot paths. *)

(** {1 Sinks} *)

type sink = record -> unit

val stderr_sink : record -> unit
(** Human-readable one-liner:
    [12:03:45.123 WARN sweep.point failed (point=3 error="…")]. *)

val ndjson_sink : out_channel -> sink
(** One JSON object per line:
    [{"ts":…,"level":"info","msg":…,"lane":0,"fields":{…}}]. The caller
    owns the channel (and its closing). *)

val add_sink : ?min_level:level -> sink -> unit
val set_sinks : (level * sink) list -> unit
(** Replace all sinks ([(min_level, sink)] pairs). [set_sinks []]
    silences logging. *)

(** {1 Per-domain buffers} *)

module Local : sig
  val install : unit -> unit
  (** Redirect this domain's records into a fresh buffer. *)

  val collect : unit -> record list
  (** Detach the buffer and return its records in emission order.
      @raise Invalid_argument if no buffer is installed. *)
end

val flush_records : record list -> unit
(** Replay collected records through the installed sinks (call after
    the join, on the sink-owning domain). *)
