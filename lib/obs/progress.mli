(** Helpers for [?on_progress:(int -> unit)] callbacks used by the long
    explorations ([Tpan_core.Semantics], [Tpan_petri.Reachability],
    [Tpan_petri.Coverability]). *)

val every : int -> (int -> unit) -> int -> unit
(** [every n f] is a callback that forwards to [f] only when the count
    is a positive multiple of [n] — throttles per-state callbacks down
    to periodic reports. *)

val throttle : ?interval:float -> ?mask:int -> (int -> unit) -> int -> unit
(** [throttle ~interval f] is a callback that forwards to [f] at most
    once per [interval] seconds (default 0.05 = 50ms) of monotonic-ish
    time. The clock is read only one call in [mask + 1] ([mask] must be
    [2^k - 1], default 15), so the per-call cost in a hot loop is an
    increment and a branch. Throttle state is per returned closure. *)

val stderr_reporter : ?interval:float -> label:string -> unit -> int -> unit
(** A time-throttled callback printing ["<label>: <n> states"] to
    stderr at most every [interval] seconds (default 0.05). *)
