(** Helpers for [?on_progress:(int -> unit)] callbacks used by the long
    explorations ([Tpan_core.Semantics], [Tpan_petri.Reachability],
    [Tpan_petri.Coverability]). *)

val every : int -> (int -> unit) -> int -> unit
(** [every n f] is a callback that forwards to [f] only when the count
    is a positive multiple of [n] — throttles per-state callbacks down
    to periodic reports. *)

val stderr_reporter : ?interval:int -> label:string -> unit -> int -> unit
(** A throttled callback printing ["<label>: <n> states"] to stderr
    every [interval] (default 10_000) counts. *)
