(** Minimal JSON document builder (no JSON library in the toolchain).

    Used for the CLI's [--json] output and the sweep engine's machine
    output. Rendering is deterministic: object fields print in the order
    given, numbers print exactly as formatted by the caller ({!Raw}) or
    with ["%.17g"] ({!Float}), so identical values yield identical bytes —
    the property the parallel-determinism tests assert on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string  (** pre-formatted number (e.g. a [Q.pp_decimal] render); emitted verbatim *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering, no trailing newline. *)

val to_string_hum : t -> string
(** Two-space indented rendering, for human eyes. *)
