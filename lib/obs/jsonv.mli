(** Minimal JSON document builder (no JSON library in the toolchain).

    Used for the CLI's [--json] output and the sweep engine's machine
    output. Rendering is deterministic: object fields print in the order
    given, numbers print exactly as formatted by the caller ({!Raw}) or
    with ["%.17g"] ({!Float}), so identical values yield identical bytes —
    the property the parallel-determinism tests assert on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Raw of string  (** pre-formatted number (e.g. a [Q.pp_decimal] render); emitted verbatim *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering, no trailing newline. *)

val to_string_hum : t -> string
(** Two-space indented rendering, for human eyes. *)

(** {1 Parsing}

    A complete JSON reader (objects, arrays, strings with escapes,
    numbers, booleans, null). It exists so the NDJSON artefacts this
    library writes — Chrome-trace lines, run-ledger records,
    [BENCH_tpan.json] — can be read back without an external JSON
    dependency. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed;
    trailing garbage is an error). Numbers parse as {!Int} when written
    without a fraction or exponent and in native [int] range, {!Float}
    otherwise. [\u]-escapes decode to UTF-8 (surrogate pairs included). *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field of an object ([None] for other constructors or absent keys). *)

val to_float_opt : t -> float option
(** {!Int}, {!Float} or a numeric {!Raw}; [None] otherwise. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
