module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let value c = c.v
  let reset c = c.v <- 0
end

module Gauge = struct
  type t = { mutable g : float }

  let create () = { g = 0. }
  let set g x = g.g <- x
  let set_max g x = if x > g.g then g.g <- x
  let value g = g.g
  let reset g = g.g <- 0.
end

module Histogram = struct
  type t = {
    mutable data : float array;
    mutable stored : int;  (* valid prefix of [data] *)
    mutable total : int;  (* observations ever, drives round-robin overwrite *)
    mutable sum : float;
    mutable max_v : float;
    cap : int;
  }

  let create ?(cap = 8192) () =
    if cap <= 0 then invalid_arg "Histogram.create: cap must be positive";
    { data = [||]; stored = 0; total = 0; sum = 0.; max_v = neg_infinity; cap }

  let observe h x =
    (if h.stored < h.cap then begin
       if h.stored >= Array.length h.data then begin
         let grown = Array.make (max 64 (min h.cap (2 * Array.length h.data))) 0. in
         Array.blit h.data 0 grown 0 h.stored;
         h.data <- grown
       end;
       h.data.(h.stored) <- x;
       h.stored <- h.stored + 1
     end
     else h.data.(h.total mod h.cap) <- x);
    h.total <- h.total + 1;
    h.sum <- h.sum +. x;
    if x > h.max_v then h.max_v <- x

  let count h = h.total
  let sum h = h.sum
  let max_value h = if h.total = 0 then Float.nan else h.max_v

  let percentile h q =
    if h.stored = 0 then Float.nan
    else begin
      let sorted = Array.sub h.data 0 h.stored in
      Array.sort compare sorted;
      let rank = int_of_float (Float.ceil (q *. float_of_int h.stored)) - 1 in
      sorted.(max 0 (min (h.stored - 1) rank))
    end

  let reset h =
    h.stored <- 0;
    h.total <- 0;
    h.sum <- 0.;
    h.max_v <- neg_infinity
end

(* ---------------- timing switch ---------------- *)

let timing = ref false
let set_timing b = timing := b
let timing_on () = !timing

let time h f =
  if not !timing then f ()
  else begin
    let t0 = Mclock.now () in
    Fun.protect ~finally:(fun () -> Histogram.observe h (Mclock.now () -. t0)) f
  end

(* ---------------- registry ---------------- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name kind_of make =
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match kind_of m with
     | Some x -> x
     | None -> invalid_arg (Printf.sprintf "Metrics: %S is registered as another kind" name))
  | None ->
    let x, m = make () in
    Hashtbl.add registry name m;
    x

let counter name =
  register name (function C c -> Some c | _ -> None) (fun () ->
      let c = Counter.create () in
      (c, C c))

let gauge name =
  register name (function G g -> Some g | _ -> None) (fun () ->
      let g = Gauge.create () in
      (g, G g))

let histogram name =
  register name (function H h -> Some h | _ -> None) (fun () ->
      let h = Histogram.create () in
      (h, H h))

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max : float }

let value_of = function
  | C c -> Counter_v (Counter.value c)
  | G g -> Gauge_v (Gauge.value g)
  | H h ->
    Histogram_v
      {
        count = Histogram.count h;
        sum = Histogram.sum h;
        p50 = Histogram.percentile h 0.5;
        p90 = Histogram.percentile h 0.9;
        p99 = Histogram.percentile h 0.99;
        max = Histogram.max_value h;
      }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find name = Option.map value_of (Hashtbl.find_opt registry name)

let counter_value name =
  match find name with Some (Counter_v n) -> n | _ -> 0

let reset_all () =
  Hashtbl.iter
    (fun _ -> function
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    registry

let pp_table fmt () =
  let entries = snapshot () in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "%-48s %s@," "metric" "value";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Format.fprintf fmt "%-48s %d@," name n
      | Gauge_v x -> Format.fprintf fmt "%-48s %g@," name x
      | Histogram_v h ->
        if h.count = 0 then Format.fprintf fmt "%-48s (empty)@," name
        else
          Format.fprintf fmt "%-48s count=%d sum=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f@,"
            name h.count h.sum h.p50 h.p90 h.p99 h.max)
    entries;
  Format.pp_close_box fmt ()
