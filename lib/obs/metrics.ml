(* Counters, gauges and histograms are plain mutable cells on the main
   domain. Worker domains (created by Tpan_par.Pool) install a domain-local
   delta buffer: every update lands in the buffer instead of the shared
   cell, and the pool merges the buffers into the global cells at join
   time. This keeps the hot-path cost at one DLS read + one store and makes
   metric totals independent of how work was scheduled. *)

let next_id = Atomic.make 0
let new_id () = Atomic.fetch_and_add next_id 1

type counter = { cid : int; mutable cv : int }
type gauge = { gid : int; mutable gv : float }

type exemplar = { ex_value : float; ex_trace_id : string; ex_ts : float }

(* Cumulative-bucket boundaries tuned for request latencies in seconds;
   histograms observing other units still get exact count/sum/max (their
   observations land in the +Inf overflow bin). *)
let default_buckets =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. |]

type histogram = {
  hid : int;
  mutable data : float array;
  mutable stored : int;  (* valid prefix of [data] *)
  mutable total : int;  (* observations ever, drives round-robin overwrite *)
  mutable hsum : float;
  mutable max_v : float;
  cap : int;
  bounds : float array;  (* finite upper bounds, strictly increasing *)
  bin_counts : int array;  (* per-bin counts; last slot is the +Inf bin *)
  bin_exemplars : exemplar option array;  (* latest exemplar per bin *)
}

(* ---------------- domain-local delta buffers ---------------- *)

module Local = struct
  type buf = {
    counters : (int, counter * int ref) Hashtbl.t;
    gauges : (int, gauge * float ref) Hashtbl.t;
    hists : (int, histogram * (float * string option) list ref) Hashtbl.t;
  }

  type deltas = buf

  let key : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
  let current () = Domain.DLS.get key

  let install () =
    Domain.DLS.set key
      (Some
         { counters = Hashtbl.create 16; gauges = Hashtbl.create 8; hists = Hashtbl.create 8 })

  let collect () =
    match current () with
    | None -> invalid_arg "Metrics.Local.collect: no buffer installed"
    | Some b ->
      Domain.DLS.set key None;
      b

  let bump_counter b c n =
    match Hashtbl.find_opt b.counters c.cid with
    | Some (_, r) -> r := !r + n
    | None -> Hashtbl.add b.counters c.cid (c, ref n)

  let bump_gauge b g x =
    match Hashtbl.find_opt b.gauges g.gid with
    | Some (_, r) -> if x > !r then r := x
    | None -> Hashtbl.add b.gauges g.gid (g, ref x)

  let bump_hist b h x trace =
    match Hashtbl.find_opt b.hists h.hid with
    | Some (_, r) -> r := (x, trace) :: !r
    | None -> Hashtbl.add b.hists h.hid (h, ref [ (x, trace) ])
end

module Counter = struct
  type t = counter

  let create () = { cid = new_id (); cv = 0 }

  let add c n =
    match Local.current () with
    | None -> c.cv <- c.cv + n
    | Some b -> Local.bump_counter b c n

  let incr c = add c 1
  let value c = c.cv
  let reset c = c.cv <- 0
end

module Gauge = struct
  type t = gauge

  let create () = { gid = new_id (); gv = 0. }

  (* In a worker domain both [set] and [set_max] merge by maximum: the
     gauges updated on parallel paths are peaks, and last-writer-wins has
     no deterministic meaning across domains. *)
  let set g x =
    match Local.current () with
    | None -> g.gv <- x
    | Some b -> Local.bump_gauge b g x

  let set_max g x =
    match Local.current () with
    | None -> if x > g.gv then g.gv <- x
    | Some b -> Local.bump_gauge b g x

  let value g = g.gv
  let reset g = g.gv <- 0.
end

module Histogram = struct
  type t = histogram

  let create ?(cap = 8192) ?(buckets = default_buckets) () =
    if cap <= 0 then invalid_arg "Histogram.create: cap must be positive";
    Array.iteri
      (fun i b ->
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Histogram.create: buckets must be strictly increasing")
      buckets;
    {
      hid = new_id ();
      data = [||];
      stored = 0;
      total = 0;
      hsum = 0.;
      max_v = neg_infinity;
      cap;
      bounds = buckets;
      bin_counts = Array.make (Array.length buckets + 1) 0;
      bin_exemplars = Array.make (Array.length buckets + 1) None;
    }

  (* First bin whose upper bound admits [x]; the trailing slot is +Inf. *)
  let bin_of h x =
    let n = Array.length h.bounds in
    let rec go i = if i >= n || x <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let observe_direct ?trace h x =
    (if h.stored < h.cap then begin
       if h.stored >= Array.length h.data then begin
         let grown = Array.make (max 64 (min h.cap (2 * Array.length h.data))) 0. in
         Array.blit h.data 0 grown 0 h.stored;
         h.data <- grown
       end;
       h.data.(h.stored) <- x;
       h.stored <- h.stored + 1
     end
     else h.data.(h.total mod h.cap) <- x);
    h.total <- h.total + 1;
    h.hsum <- h.hsum +. x;
    if x > h.max_v then h.max_v <- x;
    let bin = bin_of h x in
    h.bin_counts.(bin) <- h.bin_counts.(bin) + 1;
    match trace with
    | None -> ()
    | Some ex_trace_id ->
      h.bin_exemplars.(bin) <-
        Some { ex_value = x; ex_trace_id; ex_ts = Unix.gettimeofday () }

  let observe ?trace_id h x =
    match Local.current () with
    | None -> observe_direct ?trace:trace_id h x
    | Some b -> Local.bump_hist b h x trace_id

  let count h = h.total
  let sum h = h.hsum
  let max_value h = if h.total = 0 then Float.nan else h.max_v

  let percentile h q =
    if h.stored = 0 then Float.nan
    else begin
      let sorted = Array.sub h.data 0 h.stored in
      Array.sort compare sorted;
      let rank = int_of_float (Float.ceil (q *. float_of_int h.stored)) - 1 in
      sorted.(max 0 (min (h.stored - 1) rank))
    end

  let reset h =
    h.stored <- 0;
    h.total <- 0;
    h.hsum <- 0.;
    h.max_v <- neg_infinity;
    Array.fill h.bin_counts 0 (Array.length h.bin_counts) 0;
    Array.fill h.bin_exemplars 0 (Array.length h.bin_exemplars) None
end

let merge_deltas (b : Local.deltas) =
  Hashtbl.iter (fun _ (c, r) -> c.cv <- c.cv + !r) b.Local.counters;
  Hashtbl.iter (fun _ (g, r) -> if !r > g.gv then g.gv <- !r) b.Local.gauges;
  Hashtbl.iter
    (fun _ (h, r) ->
      List.iter (fun (x, trace) -> Histogram.observe_direct ?trace h x) (List.rev !r))
    b.Local.hists

(* ---------------- timing switch ---------------- *)

let timing = ref false
let set_timing b = timing := b
let timing_on () = !timing

let time h f =
  if not !timing then f ()
  else begin
    let t0 = Mclock.now () in
    Fun.protect ~finally:(fun () -> Histogram.observe h (Mclock.now () -. t0)) f
  end

(* ---------------- registry ---------------- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

(* A registered metric remembers its family name and label set so the
   OpenMetrics export can group a family's labelled series under one
   [# TYPE] line. The registry key is the family name plus the rendered
   label set, so [counter_with "x" [("a","1")]] and ["x" [("a","2")]]
   are distinct series of one family. *)
type registered = { metric : metric; base : string; labels : (string * string) list }

let registry : (string, registered) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | l ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) l)
    ^ "}"

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let full_name base labels = base ^ render_labels labels

let register base labels kind_of make =
  let labels = normalize_labels labels in
  let key = full_name base labels in
  Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some r ->
    (match kind_of r.metric with
     | Some x -> x
     | None -> invalid_arg (Printf.sprintf "Metrics: %S is registered as another kind" key))
  | None ->
    let x, m = make () in
    Hashtbl.add registry key { metric = m; base; labels };
    x

let counter_with name labels =
  register name labels
    (function C c -> Some c | _ -> None)
    (fun () ->
      let c = Counter.create () in
      (c, C c))

let gauge_with name labels =
  register name labels
    (function G g -> Some g | _ -> None)
    (fun () ->
      let g = Gauge.create () in
      (g, G g))

let histogram_with ?buckets name labels =
  register name labels
    (function H h -> Some h | _ -> None)
    (fun () ->
      let h = Histogram.create ?buckets () in
      (h, H h))

let counter name = counter_with name []
let gauge name = gauge_with name []
let histogram ?buckets name = histogram_with ?buckets name []

type bucket = { le : float; cumulative : int; exemplar : exemplar option }

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
      max : float;
      buckets : bucket list;
    }

let histogram_buckets (h : Histogram.t) =
  let n = Array.length h.bin_counts in
  let acc = ref 0 in
  List.init n (fun i ->
      acc := !acc + h.bin_counts.(i);
      {
        le = (if i < n - 1 then h.bounds.(i) else Float.infinity);
        cumulative = !acc;
        exemplar = h.bin_exemplars.(i);
      })

let value_of = function
  | C c -> Counter_v (Counter.value c)
  | G g -> Gauge_v (Gauge.value g)
  | H h ->
    Histogram_v
      {
        count = Histogram.count h;
        sum = Histogram.sum h;
        p50 = Histogram.percentile h 0.5;
        p90 = Histogram.percentile h 0.9;
        p99 = Histogram.percentile h 0.99;
        max = Histogram.max_value h;
        buckets = histogram_buckets h;
      }

(* Snapshot entries sorted by full series name: a family's labelled
   series are adjacent (same prefix), which the OpenMetrics export
   relies on to emit one [# TYPE] per family. *)
let snapshot_registered ?(all = true) () =
  let entries =
    Mutex.protect registry_lock @@ fun () ->
    Hashtbl.fold (fun key r acc -> (key, r) :: acc) registry []
  in
  List.map (fun (key, r) -> (key, r.base, r.labels, value_of r.metric)) entries
  |> List.filter (fun (_, _, _, v) ->
         all || match v with Histogram_v { count = 0; _ } -> false | _ -> true)
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let snapshot ?(all = true) () =
  List.map (fun (key, _, _, v) -> (key, v)) (snapshot_registered ~all ())

let find name =
  let m = Mutex.protect registry_lock @@ fun () -> Hashtbl.find_opt registry name in
  Option.map (fun r -> value_of r.metric) m

let counter_value name =
  match find name with Some (Counter_v n) -> n | _ -> 0

let reset_all () =
  Mutex.protect registry_lock @@ fun () ->
  Hashtbl.iter
    (fun _ r ->
      match r.metric with
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    registry

let pp_table ?(all = false) fmt () =
  let entries = snapshot ~all () in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "%-48s %s@," "metric" "value";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Format.fprintf fmt "%-48s %d@," name n
      | Gauge_v x -> Format.fprintf fmt "%-48s %g@," name x
      | Histogram_v h ->
        if h.count = 0 then Format.fprintf fmt "%-48s (empty)@," name
        else
          Format.fprintf fmt "%-48s count=%d sum=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f@,"
            name h.count h.sum h.p50 h.p90 h.p99 h.max)
    entries;
  Format.pp_close_box fmt ()

(* ---------------- machine exposition ---------------- *)

let to_json ?(all = false) () =
  let entry (name, v) =
    match v with
    | Counter_v n ->
      Jsonv.Obj
        [ ("name", Jsonv.Str name); ("kind", Jsonv.Str "counter"); ("value", Jsonv.Int n) ]
    | Gauge_v x ->
      Jsonv.Obj
        [ ("name", Jsonv.Str name); ("kind", Jsonv.Str "gauge"); ("value", Jsonv.Float x) ]
    | Histogram_v h ->
      (* Only the touched buckets travel: dump frames and ledger rows
         embed this document, and a run touches few bins. *)
      let touched =
        List.filteri
          (fun i b ->
            b.cumulative > 0
            && (i = 0
               || (List.nth h.buckets (i - 1)).cumulative < b.cumulative))
          h.buckets
      in
      Jsonv.Obj
        [
          ("name", Jsonv.Str name);
          ("kind", Jsonv.Str "histogram");
          ("count", Jsonv.Int h.count);
          ("sum", Jsonv.Float h.sum);
          ("p50", Jsonv.Float h.p50);
          ("p90", Jsonv.Float h.p90);
          ("p99", Jsonv.Float h.p99);
          ("max", Jsonv.Float h.max);
          ( "buckets",
            Jsonv.List
              (List.map
                 (fun b ->
                   Jsonv.Obj
                     (("le", Jsonv.Float b.le)
                     :: ("count", Jsonv.Int b.cumulative)
                     ::
                     (match b.exemplar with
                      | None -> []
                      | Some e -> [ ("exemplar_trace_id", Jsonv.Str e.ex_trace_id) ])))
                 touched) );
        ]
  in
  Jsonv.List (List.map entry (snapshot ~all ()))

(* OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The [tpan_] prefix
   guarantees a legal first character whatever the registry name was. *)
let om_name name =
  "tpan_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name

let om_label_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let om_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" x

let om_labels ?extra labels =
  let labels =
    List.map (fun (k, v) -> (om_label_name k, v)) labels
    @ match extra with None -> [] | Some kv -> [ kv ]
  in
  render_labels labels

let om_exemplar = function
  | None -> ""
  | Some e ->
    Printf.sprintf " # {trace_id=\"%s\"} %s %s"
      (escape_label_value e.ex_trace_id)
      (om_float e.ex_value) (om_float e.ex_ts)

let to_openmetrics ?(all = false) () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let last_family = ref "" in
  List.iter
    (fun (_, base, labels, v) ->
      let n = om_name base in
      let header kind =
        if !last_family <> n ^ "/" ^ kind then begin
          pr "# TYPE %s %s\n" n kind;
          last_family := n ^ "/" ^ kind
        end
      in
      match v with
      | Counter_v c ->
        header "counter";
        pr "%s_total%s %d\n" n (om_labels labels) c
      | Gauge_v x ->
        header "gauge";
        pr "%s%s %s\n" n (om_labels labels) (om_float x)
      | Histogram_v h ->
        (* Explicit cumulative buckets ([le] inclusive upper bounds,
           +Inf last) so multi-process scrapes aggregate by addition —
           summary quantiles cannot. Exemplars ride on the buckets
           they landed in, pointing a slow scrape at a trace id. *)
        header "histogram";
        List.iter
          (fun bk ->
            pr "%s_bucket%s %d%s\n" n
              (om_labels ~extra:("le", om_float bk.le) labels)
              bk.cumulative (om_exemplar bk.exemplar))
          h.buckets;
        pr "%s_count%s %d\n" n (om_labels labels) h.count;
        pr "%s_sum%s %s\n" n (om_labels labels) (om_float h.sum))
    (snapshot_registered ~all ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
