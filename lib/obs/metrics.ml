(* Counters, gauges and histograms are plain mutable cells on the main
   domain. Worker domains (created by Tpan_par.Pool) install a domain-local
   delta buffer: every update lands in the buffer instead of the shared
   cell, and the pool merges the buffers into the global cells at join
   time. This keeps the hot-path cost at one DLS read + one store and makes
   metric totals independent of how work was scheduled. *)

let next_id = Atomic.make 0
let new_id () = Atomic.fetch_and_add next_id 1

type counter = { cid : int; mutable cv : int }
type gauge = { gid : int; mutable gv : float }

type histogram = {
  hid : int;
  mutable data : float array;
  mutable stored : int;  (* valid prefix of [data] *)
  mutable total : int;  (* observations ever, drives round-robin overwrite *)
  mutable hsum : float;
  mutable max_v : float;
  cap : int;
}

(* ---------------- domain-local delta buffers ---------------- *)

module Local = struct
  type buf = {
    counters : (int, counter * int ref) Hashtbl.t;
    gauges : (int, gauge * float ref) Hashtbl.t;
    hists : (int, histogram * float list ref) Hashtbl.t;
  }

  type deltas = buf

  let key : buf option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
  let current () = Domain.DLS.get key

  let install () =
    Domain.DLS.set key
      (Some
         { counters = Hashtbl.create 16; gauges = Hashtbl.create 8; hists = Hashtbl.create 8 })

  let collect () =
    match current () with
    | None -> invalid_arg "Metrics.Local.collect: no buffer installed"
    | Some b ->
      Domain.DLS.set key None;
      b

  let bump_counter b c n =
    match Hashtbl.find_opt b.counters c.cid with
    | Some (_, r) -> r := !r + n
    | None -> Hashtbl.add b.counters c.cid (c, ref n)

  let bump_gauge b g x =
    match Hashtbl.find_opt b.gauges g.gid with
    | Some (_, r) -> if x > !r then r := x
    | None -> Hashtbl.add b.gauges g.gid (g, ref x)

  let bump_hist b h x =
    match Hashtbl.find_opt b.hists h.hid with
    | Some (_, r) -> r := x :: !r
    | None -> Hashtbl.add b.hists h.hid (h, ref [ x ])
end

module Counter = struct
  type t = counter

  let create () = { cid = new_id (); cv = 0 }

  let add c n =
    match Local.current () with
    | None -> c.cv <- c.cv + n
    | Some b -> Local.bump_counter b c n

  let incr c = add c 1
  let value c = c.cv
  let reset c = c.cv <- 0
end

module Gauge = struct
  type t = gauge

  let create () = { gid = new_id (); gv = 0. }

  (* In a worker domain both [set] and [set_max] merge by maximum: the
     gauges updated on parallel paths are peaks, and last-writer-wins has
     no deterministic meaning across domains. *)
  let set g x =
    match Local.current () with
    | None -> g.gv <- x
    | Some b -> Local.bump_gauge b g x

  let set_max g x =
    match Local.current () with
    | None -> if x > g.gv then g.gv <- x
    | Some b -> Local.bump_gauge b g x

  let value g = g.gv
  let reset g = g.gv <- 0.
end

module Histogram = struct
  type t = histogram

  let create ?(cap = 8192) () =
    if cap <= 0 then invalid_arg "Histogram.create: cap must be positive";
    { hid = new_id (); data = [||]; stored = 0; total = 0; hsum = 0.; max_v = neg_infinity; cap }

  let observe_direct h x =
    (if h.stored < h.cap then begin
       if h.stored >= Array.length h.data then begin
         let grown = Array.make (max 64 (min h.cap (2 * Array.length h.data))) 0. in
         Array.blit h.data 0 grown 0 h.stored;
         h.data <- grown
       end;
       h.data.(h.stored) <- x;
       h.stored <- h.stored + 1
     end
     else h.data.(h.total mod h.cap) <- x);
    h.total <- h.total + 1;
    h.hsum <- h.hsum +. x;
    if x > h.max_v then h.max_v <- x

  let observe h x =
    match Local.current () with
    | None -> observe_direct h x
    | Some b -> Local.bump_hist b h x

  let count h = h.total
  let sum h = h.hsum
  let max_value h = if h.total = 0 then Float.nan else h.max_v

  let percentile h q =
    if h.stored = 0 then Float.nan
    else begin
      let sorted = Array.sub h.data 0 h.stored in
      Array.sort compare sorted;
      let rank = int_of_float (Float.ceil (q *. float_of_int h.stored)) - 1 in
      sorted.(max 0 (min (h.stored - 1) rank))
    end

  let reset h =
    h.stored <- 0;
    h.total <- 0;
    h.hsum <- 0.;
    h.max_v <- neg_infinity
end

let merge_deltas (b : Local.deltas) =
  Hashtbl.iter (fun _ (c, r) -> c.cv <- c.cv + !r) b.Local.counters;
  Hashtbl.iter (fun _ (g, r) -> if !r > g.gv then g.gv <- !r) b.Local.gauges;
  Hashtbl.iter (fun _ (h, r) -> List.iter (Histogram.observe_direct h) (List.rev !r)) b.Local.hists

(* ---------------- timing switch ---------------- *)

let timing = ref false
let set_timing b = timing := b
let timing_on () = !timing

let time h f =
  if not !timing then f ()
  else begin
    let t0 = Mclock.now () in
    Fun.protect ~finally:(fun () -> Histogram.observe h (Mclock.now () -. t0)) f
  end

(* ---------------- registry ---------------- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name kind_of make =
  Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
    (match kind_of m with
     | Some x -> x
     | None -> invalid_arg (Printf.sprintf "Metrics: %S is registered as another kind" name))
  | None ->
    let x, m = make () in
    Hashtbl.add registry name m;
    x

let counter name =
  register name (function C c -> Some c | _ -> None) (fun () ->
      let c = Counter.create () in
      (c, C c))

let gauge name =
  register name (function G g -> Some g | _ -> None) (fun () ->
      let g = Gauge.create () in
      (g, G g))

let histogram name =
  register name (function H h -> Some h | _ -> None) (fun () ->
      let h = Histogram.create () in
      (h, H h))

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max : float }

let value_of = function
  | C c -> Counter_v (Counter.value c)
  | G g -> Gauge_v (Gauge.value g)
  | H h ->
    Histogram_v
      {
        count = Histogram.count h;
        sum = Histogram.sum h;
        p50 = Histogram.percentile h 0.5;
        p90 = Histogram.percentile h 0.9;
        p99 = Histogram.percentile h 0.99;
        max = Histogram.max_value h;
      }

let snapshot ?(all = true) () =
  let entries =
    Mutex.protect registry_lock @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  List.map (fun (name, m) -> (name, value_of m)) entries
  |> List.filter (fun (_, v) ->
         all || match v with Histogram_v { count = 0; _ } -> false | _ -> true)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find name =
  let m = Mutex.protect registry_lock @@ fun () -> Hashtbl.find_opt registry name in
  Option.map value_of m

let counter_value name =
  match find name with Some (Counter_v n) -> n | _ -> 0

let reset_all () =
  Mutex.protect registry_lock @@ fun () ->
  Hashtbl.iter
    (fun _ -> function
      | C c -> Counter.reset c
      | G g -> Gauge.reset g
      | H h -> Histogram.reset h)
    registry

let pp_table ?(all = false) fmt () =
  let entries = snapshot ~all () in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "%-48s %s@," "metric" "value";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Format.fprintf fmt "%-48s %d@," name n
      | Gauge_v x -> Format.fprintf fmt "%-48s %g@," name x
      | Histogram_v h ->
        if h.count = 0 then Format.fprintf fmt "%-48s (empty)@," name
        else
          Format.fprintf fmt "%-48s count=%d sum=%.6f p50=%.6f p90=%.6f p99=%.6f max=%.6f@,"
            name h.count h.sum h.p50 h.p90 h.p99 h.max)
    entries;
  Format.pp_close_box fmt ()

(* ---------------- machine exposition ---------------- *)

let to_json ?(all = false) () =
  let entry (name, v) =
    match v with
    | Counter_v n ->
      Jsonv.Obj
        [ ("name", Jsonv.Str name); ("kind", Jsonv.Str "counter"); ("value", Jsonv.Int n) ]
    | Gauge_v x ->
      Jsonv.Obj
        [ ("name", Jsonv.Str name); ("kind", Jsonv.Str "gauge"); ("value", Jsonv.Float x) ]
    | Histogram_v h ->
      Jsonv.Obj
        [
          ("name", Jsonv.Str name);
          ("kind", Jsonv.Str "histogram");
          ("count", Jsonv.Int h.count);
          ("sum", Jsonv.Float h.sum);
          ("p50", Jsonv.Float h.p50);
          ("p90", Jsonv.Float h.p90);
          ("p99", Jsonv.Float h.p99);
          ("max", Jsonv.Float h.max);
        ]
  in
  Jsonv.List (List.map entry (snapshot ~all ()))

(* OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The [tpan_] prefix
   guarantees a legal first character whatever the registry name was. *)
let om_name name =
  "tpan_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name

let om_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" x

let to_openmetrics ?(all = false) () =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      match v with
      | Counter_v c ->
        pr "# TYPE %s counter\n" n;
        pr "%s_total %d\n" n c
      | Gauge_v x ->
        pr "# TYPE %s gauge\n" n;
        pr "%s %s\n" n (om_float x)
      | Histogram_v h ->
        pr "# TYPE %s summary\n" n;
        pr "%s_count %d\n" n h.count;
        pr "%s_sum %s\n" n (om_float h.sum);
        pr "%s{quantile=\"0.5\"} %s\n" n (om_float h.p50);
        pr "%s{quantile=\"0.9\"} %s\n" n (om_float h.p90);
        pr "%s{quantile=\"0.99\"} %s\n" n (om_float h.p99);
        pr "%s{quantile=\"1\"} %s\n" n (om_float h.max))
    (snapshot ~all ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
