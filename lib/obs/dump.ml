(* Flight-recorder frames and the watchdog.

   A frame is a point-in-time snapshot of a running analysis: every
   domain's active span stack, per-domain checkpoint heartbeats, GC
   statistics, and the metrics registry. Frames are appended as NDJSON
   to a flight file; [kind] distinguishes the watchdog's periodic
   ["frame"] records from event-driven ["dump"] records (deadline,
   stall, SIGUSR1). [tpan top] tails or replays the file.

   The watchdog runs in its own domain so it keeps observing even when
   every analysis domain is wedged inside a stage that stopped reaching
   its checkpoints. *)

type frame = {
  ts : float; (* wall clock, Unix epoch *)
  uptime : float; (* seconds since this module loaded *)
  kind : string; (* "frame" (periodic) or "dump" (event) *)
  reason : string option; (* for dumps: what triggered it *)
  trace_id : string option;
  spans : (int * string list) list; (* lane, open spans innermost first *)
  progress : (int * int) list; (* domain id, checkpoint heartbeats *)
  gc : (string * float) list;
  metrics : Jsonv.t;
}

let epoch = Mclock.now ()

let gc_stats () =
  let s = Gc.quick_stat () in
  [
    ("minor_words", s.Gc.minor_words);
    ("major_words", s.Gc.major_words);
    ("heap_words", float_of_int s.Gc.heap_words);
    ("minor_collections", float_of_int s.Gc.minor_collections);
    ("major_collections", float_of_int s.Gc.major_collections);
  ]

let snapshot ?(kind = "frame") ?reason ?trace_id () =
  {
    ts = Unix.gettimeofday ();
    uptime = Mclock.now () -. epoch;
    kind;
    reason;
    trace_id = (match trace_id with Some _ -> trace_id | None -> Context.trace_id ());
    spans = Trace.span_stacks ();
    progress = Cancel.heartbeats ();
    gc = gc_stats ();
    metrics = Metrics.to_json ~all:false ();
  }

(* ---------------- Jsonv round-trip ---------------- *)

let to_json f =
  let opt_str = function None -> Jsonv.Null | Some s -> Jsonv.Str s in
  Jsonv.Obj
    [
      ("ts", Jsonv.Float f.ts);
      ("uptime", Jsonv.Float f.uptime);
      ("kind", Jsonv.Str f.kind);
      ("reason", opt_str f.reason);
      ("trace_id", opt_str f.trace_id);
      ( "spans",
        Jsonv.List
          (List.map
             (fun (lane, stack) ->
               Jsonv.Obj
                 [
                   ("lane", Jsonv.Int lane);
                   ("stack", Jsonv.List (List.map (fun s -> Jsonv.Str s) stack));
                 ])
             f.spans) );
      ( "progress",
        Jsonv.List
          (List.map
             (fun (dom, n) ->
               Jsonv.Obj [ ("domain", Jsonv.Int dom); ("beats", Jsonv.Int n) ])
             f.progress) );
      ("gc", Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Float v)) f.gc));
      ("metrics", f.metrics);
    ]

let of_json doc =
  let open Jsonv in
  let str k = Option.bind (member k doc) to_string_opt in
  let num k = Option.bind (member k doc) to_float_opt in
  match (num "ts", str "kind") with
  | Some ts, Some kind ->
    let spans =
      match Option.bind (member "spans" doc) to_list_opt with
      | Some xs ->
        List.filter_map
          (fun s ->
            match Option.bind (member "lane" s) to_int_opt with
            | Some lane ->
              let stack =
                match Option.bind (member "stack" s) to_list_opt with
                | Some items -> List.filter_map to_string_opt items
                | None -> []
              in
              Some (lane, stack)
            | None -> None)
          xs
      | None -> []
    in
    let progress =
      match Option.bind (member "progress" doc) to_list_opt with
      | Some xs ->
        List.filter_map
          (fun p ->
            match
              ( Option.bind (member "domain" p) to_int_opt,
                Option.bind (member "beats" p) to_int_opt )
            with
            | Some dom, Some n -> Some (dom, n)
            | _ -> None)
          xs
      | None -> []
    in
    let gc =
      match member "gc" doc with
      | Some (Obj o) ->
        List.filter_map (fun (k, v) -> Option.map (fun x -> (k, x)) (to_float_opt v)) o
      | _ -> []
    in
    Some
      {
        ts;
        uptime = (match num "uptime" with Some u -> u | None -> 0.);
        kind;
        reason = str "reason";
        trace_id = str "trace_id";
        spans;
        progress;
        gc;
        metrics = (match member "metrics" doc with Some m -> m | None -> List []);
      }
  | _ -> None

(* ---------------- storage ---------------- *)

(* O_APPEND like the ledger: the watchdog domain and a cancelling
   analysis domain may both append; lines interleave whole. *)
let append path f =
  try
    let dir = Filename.dirname path in
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
      Unix.mkdir dir 0o755;
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let line = Jsonv.to_string (to_json f) ^ "\n" in
    let bytes = Bytes.of_string line in
    let rec write off =
      if off < Bytes.length bytes then
        write (off + Unix.write fd bytes off (Bytes.length bytes - off))
    in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> write 0);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Sys_error msg -> Error msg

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    try
      let ic = open_in path in
      let frames = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Jsonv.of_string line with
             | Ok doc -> (
               match of_json doc with
               | Some f -> frames := f :: !frames
               | None -> ())
             | Error _ -> ()
         done
       with End_of_file -> close_in ic);
      Ok (List.rev !frames)
    with Sys_error msg -> Error msg

(* ---------------- progress summary ---------------- *)

(* The partial-progress counters a deadline report leads with: how far
   each stage of the pipeline got before the abort. Pulled from the
   frame's metrics snapshot so the same code serves live dumps and
   replayed files. *)
let progress_counters =
  [
    ("core.semantics.states_interned", "states");
    ("core.semantics.edges", "edges");
    ("petri.reachability.states", "reach states");
    ("petri.coverability.nodes", "cover nodes");
    ("mathkit.fm.eliminations", "FM eliminations");
    ("perf.decision_graph.nodes", "decision nodes");
    ("sim.simulator.steps", "sim steps");
  ]

let progress_summary f =
  let entries =
    match f.metrics with
    | Jsonv.List ms ->
      List.filter_map
        (fun m ->
          match
            ( Option.bind (Jsonv.member "name" m) Jsonv.to_string_opt,
              Option.bind (Jsonv.member "value" m) Jsonv.to_int_opt )
          with
          | Some name, Some v -> Some (name, v)
          | _ -> None)
        ms
    | _ -> []
  in
  List.filter_map
    (fun (metric, label) ->
      match List.assoc_opt metric entries with
      | Some v when v > 0 -> Some (label, v)
      | _ -> None)
    progress_counters

let pp_frame fmt f =
  let open Format in
  pp_open_vbox fmt 0;
  let tm = Unix.localtime f.ts in
  fprintf fmt "%s at %02d:%02d:%02d (uptime %.2fs)%s@," f.kind tm.Unix.tm_hour
    tm.Unix.tm_min tm.Unix.tm_sec f.uptime
    (match f.reason with Some r -> " — " ^ r | None -> "");
  (match f.trace_id with
  | Some id -> fprintf fmt "trace %s@," id
  | None -> ());
  (match progress_summary f with
  | [] -> ()
  | ps ->
    fprintf fmt "progress: %s@,"
      (String.concat ", "
         (List.map (fun (label, v) -> Printf.sprintf "%d %s" v label) ps)));
  List.iter
    (fun (lane, stack) ->
      let where =
        match stack with
        | [] -> "(idle)"
        | s -> String.concat " < " s
      in
      fprintf fmt "lane %d: %s@," lane where)
    f.spans;
  List.iter
    (fun (dom, beats) -> fprintf fmt "domain %d: %d checkpoints@," dom beats)
    f.progress;
  (match List.assoc_opt "heap_words" f.gc with
  | Some hw ->
    fprintf fmt "gc: heap %.1f MB, %d minor / %d major collections@,"
      (hw *. 8. /. 1e6)
      (int_of_float (Option.value ~default:0. (List.assoc_opt "minor_collections" f.gc)))
      (int_of_float (Option.value ~default:0. (List.assoc_opt "major_collections" f.gc)))
  | None -> ());
  pp_close_box fmt ()

(* ---------------- watchdog ---------------- *)

let sigusr1_flag = Atomic.make false

let install_sigusr1 () =
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set sigusr1_flag true))
  with Invalid_argument _ | Sys_error _ -> ()

type watchdog = { stop_flag : bool Atomic.t; dom : unit Domain.t }

let write_dump ?trace_id path reason =
  let f = snapshot ~kind:"dump" ~reason ?trace_id () in
  ignore (append path f : (unit, string) result);
  Log.warn ~fields:[ ("reason", Jsonv.Str reason); ("path", Jsonv.Str path) ]
    "flight recorder dump written"

let start_watchdog ?(interval = 0.1) ?stall ?(frame_every = 1.0) ?path ?token ()
    =
  let stop_flag = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let last_beats = ref (Cancel.heartbeat_total ()) in
        let last_change = ref (Mclock.now ()) in
        let stall_reported = ref false in
        let last_frame = ref (Mclock.now ()) in
        while not (Atomic.get stop_flag) do
          Unix.sleepf interval;
          if not (Atomic.get stop_flag) then begin
            let now = Mclock.now () in
            (* SIGUSR1: operator asked for a look inside *)
            if Atomic.exchange sigusr1_flag false then
              Option.iter (fun p -> write_dump p "SIGUSR1") path;
            (* stall: the checkpoint heartbeat stopped advancing *)
            (match stall with
            | Some limit ->
              let beats = Cancel.heartbeat_total () in
              if beats <> !last_beats then begin
                last_beats := beats;
                last_change := now;
                stall_reported := false
              end
              else if (not !stall_reported) && now -. !last_change >= limit
              then begin
                stall_reported := true;
                let reason =
                  Cancel.reason_to_string (Cancel.Stalled (now -. !last_change))
                in
                match path with
                | Some p -> write_dump p reason
                | None ->
                  Log.warn
                    ~fields:[ ("reason", Jsonv.Str reason) ]
                    "flight recorder: analysis stalled"
              end
            | None -> ());
            (* deadline: cancel even if no checkpoint noticed in time.
               The cancellation hook (when registered) writes the dump,
               so a wedged loop still leaves diagnostics behind. *)
            (match token with
            | Some t -> (
              match (Cancel.cancelled t, Cancel.deadline t) with
              | None, Some dl when now >= dl ->
                Cancel.cancel t
                  (Cancel.Deadline (Option.value ~default:0. (Cancel.budget t)))
              | _ -> ())
            | None -> ());
            (* periodic frame for [tpan top] *)
            match path with
            | Some p when now -. !last_frame >= frame_every ->
              last_frame := now;
              ignore (append p (snapshot ~kind:"frame" ()) : (unit, string) result)
            | _ -> ()
          end
        done)
  in
  { stop_flag; dom }

let stop_watchdog w =
  Atomic.set w.stop_flag true;
  Domain.join w.dom
