(* Request-scoped context: the identity every observability record of a
   run hangs off. One context per CLI invocation (or, later, per served
   request); [Tpan_par.Pool] re-installs the calling domain's context in
   every worker it spawns, so spans, log records, and ledger rows from
   all lanes of a parallel stage carry the same trace id. *)

type t = {
  trace_id : string;
  span_id : string;
  labels : (string * string) list;
  token : Cancel.token;
}

(* Ids: wall-clock microseconds + pid + a process-local counter, hex.
   Unique enough to correlate records across processes on one host
   without dragging in a randomness dependency. *)
let id_counter = Atomic.make 0

let gen_id () =
  let us = Int64.of_float (Mclock.now () *. 1e6) in
  Printf.sprintf "%Lx%04x%x"
    (Int64.logand us 0xFFFFFFFFFFFFL)
    (Unix.getpid () land 0xFFFF)
    (Atomic.fetch_and_add id_counter 1)

let make ?trace_id ?deadline ?(labels = []) () =
  let trace_id = match trace_id with Some id -> id | None -> gen_id () in
  {
    trace_id;
    span_id = gen_id ();
    labels;
    token = Cancel.create ?deadline_in:deadline ();
  }

let child ctx = { ctx with span_id = gen_id () }

let cell : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let set c =
  Domain.DLS.get cell := c;
  Cancel.set (Option.map (fun ctx -> ctx.token) c)

let current () = !(Domain.DLS.get cell)

let with_ctx c f =
  let r = Domain.DLS.get cell in
  let saved_ctx = !r in
  let saved_tok = Cancel.current () in
  set (Some c);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.get cell := saved_ctx;
      Cancel.set saved_tok)
    f

let trace_id () = Option.map (fun c -> c.trace_id) (current ())
let token () = Option.map (fun c -> c.token) (current ())
