type figure = { name : string; seconds : float; major_words : float; minor_words : float }
type verdict = Ok_v | Warn_v | Fail_v

type row = {
  name : string;
  base_seconds : float;
  cur_seconds : float;
  time_ratio : float;
  base_major_words : float;
  cur_major_words : float;
  major_words_ratio : float;
  base_minor_words : float;
  cur_minor_words : float;
  minor_words_ratio : float;
  verdict : verdict;
}

type report = {
  rows : row list;
  missing : string list;
  added : string list;
  worst : verdict;
}

let default_warn = 1.25
let default_fail = 2.0

let verdict_to_string = function Ok_v -> "ok" | Warn_v -> "WARN" | Fail_v -> "FAIL"

let figures_of_json doc =
  match Option.bind (Jsonv.member "figures" doc) Jsonv.to_list_opt with
  | None -> Error "no \"figures\" array (is this a BENCH_tpan.json?)"
  | Some figs ->
    Ok
      (List.filter_map
         (fun f ->
           match
             ( Option.bind (Jsonv.member "name" f) Jsonv.to_string_opt,
               Option.bind (Jsonv.member "seconds" f) Jsonv.to_float_opt )
           with
           | Some name, Some seconds ->
             let gc_field key =
               match
                 Option.bind
                   (Option.bind (Jsonv.member "gc" f) (Jsonv.member key))
                   Jsonv.to_float_opt
               with
               | Some w -> w
               | None -> 0.
             in
             Some
               {
                 name;
                 seconds;
                 major_words = gc_field "major_words";
                 minor_words = gc_field "minor_words";
               }
           | _ -> None)
         figs)

(* A section whose baseline cost is below the noise floor cannot
   meaningfully regress by ratio: clamp the denominator so a 2 ms -> 5 ms
   jitter on a trivial figure does not read as a 2.5x regression. *)
let floor_seconds = 0.010
let floor_words = 1e4

(* The minor heap churns orders of magnitude more words than the major
   heap, so its noise floor sits higher: a figure has to allocate at
   least a few megabytes before a ratio means anything. *)
let floor_minor_words = 1e6

let ratio ~floor base cur =
  let base = Float.max base floor and cur = Float.max cur floor in
  cur /. base

let classify ~warn ~fail r =
  if r >= fail then Fail_v else if r >= warn then Warn_v else Ok_v

let worse a b =
  match (a, b) with
  | Fail_v, _ | _, Fail_v -> Fail_v
  | Warn_v, _ | _, Warn_v -> Warn_v
  | Ok_v, Ok_v -> Ok_v

let compare_figures ?(warn = default_warn) ?(fail = default_fail) ~baseline ~current () =
  let rows =
    List.filter_map
      (fun (cur : figure) ->
        match List.find_opt (fun (b : figure) -> b.name = cur.name) baseline with
        | None -> None
        | Some base ->
          let time_ratio = ratio ~floor:floor_seconds base.seconds cur.seconds in
          let mw_ratio = ratio ~floor:floor_words base.major_words cur.major_words in
          let minw_ratio =
            ratio ~floor:floor_minor_words base.minor_words cur.minor_words
          in
          let verdict =
            worse
              (worse (classify ~warn ~fail time_ratio) (classify ~warn ~fail mw_ratio))
              (classify ~warn ~fail minw_ratio)
          in
          Some
            {
              name = cur.name;
              base_seconds = base.seconds;
              cur_seconds = cur.seconds;
              time_ratio;
              base_major_words = base.major_words;
              cur_major_words = cur.major_words;
              major_words_ratio = mw_ratio;
              base_minor_words = base.minor_words;
              cur_minor_words = cur.minor_words;
              minor_words_ratio = minw_ratio;
              verdict;
            })
      current
  in
  let missing =
    List.filter_map
      (fun (b : figure) ->
        if List.exists (fun (c : figure) -> c.name = b.name) current then None
        else Some b.name)
      baseline
  in
  let added =
    List.filter_map
      (fun (c : figure) ->
        if List.exists (fun (b : figure) -> b.name = c.name) baseline then None
        else Some c.name)
      current
  in
  let worst = List.fold_left (fun acc r -> worse acc r.verdict) Ok_v rows in
  (* A vanished section is a regression in coverage, not just noise — but
     only when the two documents are comparable at all. If they share no
     figure names (different bench suites, renamed harness) there is no
     ratio to judge: report the disjointness through [missing]/[added]
     and keep the verdict [Ok_v]. *)
  let worst = if missing <> [] && rows <> [] then worse worst Warn_v else worst in
  { rows; missing; added; worst }

let load_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Jsonv.of_string s with
    | Ok doc -> figures_of_json doc
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  with Sys_error msg -> Error msg

let pp_report fmt t =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "%-12s %10s %10s %7s %12s %12s %7s %7s  %s@," "figure" "base(s)"
    "cur(s)" "xtime" "base(Mw)" "cur(Mw)" "xmajw" "xminw" "verdict";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %10.3f %10.3f %7.2f %12.0f %12.0f %7.2f %7.2f  %s@," r.name
        r.base_seconds r.cur_seconds r.time_ratio r.base_major_words r.cur_major_words
        r.major_words_ratio r.minor_words_ratio
        (verdict_to_string r.verdict))
    t.rows;
  List.iter (fun n -> Format.fprintf fmt "missing from current: %s@," n) t.missing;
  List.iter (fun n -> Format.fprintf fmt "new in current: %s@," n) t.added;
  Format.fprintf fmt "overall: %s@," (verdict_to_string t.worst);
  Format.pp_close_box fmt ()

let report_to_json t =
  Jsonv.Obj
    [
      ("schema", Jsonv.Int 1);
      ("kind", Jsonv.Str "bench-diff");
      ( "rows",
        Jsonv.List
          (List.map
             (fun r ->
               Jsonv.Obj
                 [
                   ("name", Jsonv.Str r.name);
                   ("base_seconds", Jsonv.Float r.base_seconds);
                   ("cur_seconds", Jsonv.Float r.cur_seconds);
                   ("time_ratio", Jsonv.Float r.time_ratio);
                   ("base_major_words", Jsonv.Float r.base_major_words);
                   ("cur_major_words", Jsonv.Float r.cur_major_words);
                   ("major_words_ratio", Jsonv.Float r.major_words_ratio);
                   ("base_minor_words", Jsonv.Float r.base_minor_words);
                   ("cur_minor_words", Jsonv.Float r.cur_minor_words);
                   ("minor_words_ratio", Jsonv.Float r.minor_words_ratio);
                   ("verdict", Jsonv.Str (verdict_to_string r.verdict));
                 ])
             t.rows) );
      ("missing", Jsonv.List (List.map (fun n -> Jsonv.Str n) t.missing));
      ("added", Jsonv.List (List.map (fun n -> Jsonv.Str n) t.added));
      ("overall", Jsonv.Str (verdict_to_string t.worst));
    ]
