(** The run ledger: an append-only NDJSON history of CLI invocations.

    Every opted-in [tpan] run appends one {!record} — subcommand, argv,
    model, per-stage timings from the profiler spans, a metrics
    snapshot, exit code, wall duration, build version — to
    [<dir>/runs.ndjson] (default directory [.tpan], overridable with the
    [TPAN_DIR] environment variable). [tpan runs] queries it.

    The file is plain NDJSON: greppable, appendable from concurrent
    processes (O_APPEND line writes), and forward-compatible — records
    carry a [schema] number and unparseable lines are skipped on load
    instead of failing the query. *)

type stage = { stage : string; seconds : float; count : int }
(** Aggregated span totals, as returned by {!Trace.stage_totals}. *)

type record = {
  schema : int;  (** record schema version, currently 1 *)
  version : string;  (** build version of the writing binary *)
  timestamp : float;  (** start of the run, Unix seconds *)
  subcommand : string;
  argv : string list;  (** full command line, program name included *)
  model : string option;  (** builtin model name, when one was used *)
  trace_id : string option;
      (** the run's {!Context.trace_id}, correlating the ledger row with
          spans, log records and flight-recorder dumps *)
  stages : stage list;
  metrics : Jsonv.t;  (** a {!Metrics.to_json} snapshot *)
  report : Jsonv.t option;
      (** last analysis-facade report of the run, when one completed *)
  exit_code : int;
  duration : float;  (** wall seconds *)
}

val schema_version : int

val make :
  version:string ->
  timestamp:float ->
  subcommand:string ->
  argv:string list ->
  ?model:string ->
  ?trace_id:string ->
  ?stages:stage list ->
  ?metrics:Jsonv.t ->
  ?report:Jsonv.t ->
  exit_code:int ->
  duration:float ->
  unit ->
  record
(** [schema] is filled with {!schema_version}. *)

val to_json : record -> Jsonv.t
val of_json : Jsonv.t -> record option

val default_dir : unit -> string
(** [$TPAN_DIR] when set and non-empty, else [".tpan"]. *)

val runs_file : string -> string
(** [runs_file dir] is the ledger path under [dir]. *)

val append : ?dir:string -> record -> (unit, string) result
(** Append one record (creating the directory and file as needed). *)

val load : ?dir:string -> unit -> (record list, string) result
(** All parseable records, oldest first. An absent file is [Ok []]. *)

(** {1 Aggregate statistics}

    The analytics behind [tpan runs --stats]: wall-time percentiles per
    subcommand and per pipeline stage, plus the exit-code breakdown. *)

type stats_row = {
  key : string;  (** subcommand or stage name *)
  runs : int;
  p50 : float;  (** nearest-rank median, seconds *)
  p95 : float;
  total : float;
}

type stats = {
  commands : stats_row list;  (** per-subcommand run durations *)
  stage_stats : stats_row list;  (** per-stage span totals *)
  exit_codes : (int * int) list;  (** exit code → run count *)
}

val stats : record list -> stats
val stats_to_json : stats -> Jsonv.t
val pp_stats : Format.formatter -> stats -> unit
