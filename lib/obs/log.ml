type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field = string * Jsonv.t

type record = {
  ts : float;
  level : level;
  msg : string;
  lane : int;
  trace_id : string option;
  fields : field list;
}

type sink = record -> unit

(* The sink list lives on the main domain; workers never touch it (their
   records go through the Local buffer), so a plain ref suffices. The
   cached minimum severity makes [enabled] one load + one compare. *)
let sinks : (level * sink) list ref = ref []
let min_severity = ref max_int

let recompute () =
  min_severity :=
    List.fold_left (fun acc (lvl, _) -> min acc (severity lvl)) max_int !sinks

let set_sinks l =
  sinks := l;
  recompute ()

let add_sink ?(min_level = Debug) sink =
  sinks := (min_level, sink) :: !sinks;
  recompute ()

(* ---------------- per-domain buffers ---------------- *)

module Local = struct
  let key : record list ref option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
  let current () = Domain.DLS.get key
  let install () = Domain.DLS.set key (Some (ref []))

  let collect () =
    match current () with
    | None -> invalid_arg "Log.Local.collect: no buffer installed"
    | Some b ->
      Domain.DLS.set key None;
      List.rev !b
end

(* ---------------- emission ---------------- *)

let dispatch r =
  List.iter (fun (lvl, sink) -> if severity r.level >= severity lvl then sink r) !sinks

let enabled level = severity level >= !min_severity

let emit level msg fields =
  if enabled level then begin
    let r =
      { ts = Unix.gettimeofday (); level; msg; lane = Trace.current_lane ();
        trace_id = Context.trace_id (); fields }
    in
    match Local.current () with
    | Some b -> b := r :: !b
    | None -> dispatch r
  end

let debug ?(fields = []) msg = emit Debug msg fields
let info ?(fields = []) msg = emit Info msg fields
let warn ?(fields = []) msg = emit Warn msg fields
let error ?(fields = []) msg = emit Error msg fields

let flush_records rs = List.iter dispatch rs

(* ---------------- sinks ---------------- *)

let field_text v =
  match v with
  | Jsonv.Str s ->
    if String.exists (fun c -> c = ' ' || c = '"' || Char.code c < 32) s then
      "\"" ^ Jsonv.escape s ^ "\""
    else s
  | v -> Jsonv.to_string v

let stderr_sink r =
  let tm = Unix.localtime r.ts in
  let ms = int_of_float (Float.rem r.ts 1.0 *. 1000.) in
  let fields =
    match r.fields with
    | [] -> ""
    | fs ->
      " ("
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ field_text v) fs)
      ^ ")"
  in
  let lane = if r.lane = 0 then "" else Printf.sprintf " [lane %d]" r.lane in
  Printf.eprintf "%02d:%02d:%02d.%03d %-5s %s%s%s\n%!" tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms
    (String.uppercase_ascii (level_to_string r.level))
    r.msg fields lane

let record_to_json r =
  let trace =
    match r.trace_id with
    | Some id -> [ ("trace_id", Jsonv.Str id) ]
    | None -> []
  in
  Jsonv.Obj
    ([
       ("ts", Jsonv.Float r.ts);
       ("level", Jsonv.Str (level_to_string r.level));
       ("msg", Jsonv.Str r.msg);
       ("lane", Jsonv.Int r.lane);
     ]
    @ trace
    @ [ ("fields", Jsonv.Obj r.fields) ])

let ndjson_sink oc r =
  output_string oc (Jsonv.to_string (record_to_json r));
  output_char oc '\n';
  flush oc
