let every n f count = if n > 0 && count > 0 && count mod n = 0 then f count

let stderr_reporter ?(interval = 10_000) ~label () =
  every interval (fun n -> Printf.eprintf "%s: %d states\n%!" label n)
