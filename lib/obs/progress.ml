let every n f count = if n > 0 && count > 0 && count mod n = 0 then f count

(* Time-based throttling. Reading the clock on every callback would put
   a syscall-ish cost in per-state loops, so the clock is consulted only
   one call in [mask + 1] (counter-masked); with the default mask of 15
   a loop doing a million callbacks a second reads the clock ~60k times
   and fires [f] at most once per [interval]. State is per-closure, so
   each exploration gets its own cadence. *)
let throttle ?(interval = 0.05) ?(mask = 15) f =
  let calls = ref 0 in
  let last = ref (Mclock.now ()) in
  fun count ->
    incr calls;
    if !calls land mask = 0 then begin
      let now = Mclock.now () in
      if now -. !last >= interval then begin
        last := now;
        f count
      end
    end

let stderr_reporter ?(interval = 0.05) ~label () =
  throttle ~interval (fun n -> Printf.eprintf "%s: %d states\n%!" label n)
