(* Run records are append-only NDJSON: one JSON object per line in
   <dir>/runs.ndjson. Appends use O_APPEND so concurrent invocations
   interleave at line granularity; a torn or foreign line is skipped on
   load rather than poisoning the whole history. *)

let schema_version = 1

type stage = { stage : string; seconds : float; count : int }

type record = {
  schema : int;
  version : string;
  timestamp : float;
  subcommand : string;
  argv : string list;
  model : string option;
  stages : stage list;
  metrics : Jsonv.t;
  report : Jsonv.t option;
  exit_code : int;
  duration : float;
}

let make ~version ~timestamp ~subcommand ~argv ?model ?(stages = [])
    ?(metrics = Jsonv.List []) ?report ~exit_code ~duration () =
  {
    schema = schema_version;
    version;
    timestamp;
    subcommand;
    argv;
    model;
    stages;
    metrics;
    report;
    exit_code;
    duration;
  }

let to_json r =
  Jsonv.Obj
    [
      ("schema", Jsonv.Int r.schema);
      ("version", Jsonv.Str r.version);
      ("timestamp", Jsonv.Float r.timestamp);
      ("subcommand", Jsonv.Str r.subcommand);
      ("argv", Jsonv.List (List.map (fun a -> Jsonv.Str a) r.argv));
      ("model", match r.model with None -> Jsonv.Null | Some m -> Jsonv.Str m);
      ( "stages",
        Jsonv.List
          (List.map
             (fun s ->
               Jsonv.Obj
                 [
                   ("stage", Jsonv.Str s.stage);
                   ("seconds", Jsonv.Float s.seconds);
                   ("count", Jsonv.Int s.count);
                 ])
             r.stages) );
      ("metrics", r.metrics);
      ("report", match r.report with None -> Jsonv.Null | Some j -> j);
      ("exit_code", Jsonv.Int r.exit_code);
      ("duration", Jsonv.Float r.duration);
    ]

let of_json doc =
  let open Jsonv in
  let str k = Option.bind (member k doc) to_string_opt in
  let num k = Option.bind (member k doc) to_float_opt in
  let int k = Option.bind (member k doc) to_int_opt in
  match (int "schema", str "version", num "timestamp", str "subcommand") with
  | Some schema, Some version, Some timestamp, Some subcommand ->
    let argv =
      match Option.bind (member "argv" doc) to_list_opt with
      | Some xs -> List.filter_map to_string_opt xs
      | None -> []
    in
    let stages =
      match Option.bind (member "stages" doc) to_list_opt with
      | Some xs ->
        List.filter_map
          (fun s ->
            match
              ( Option.bind (member "stage" s) to_string_opt,
                Option.bind (member "seconds" s) to_float_opt )
            with
            | Some stage, Some seconds ->
              let count =
                match Option.bind (member "count" s) to_int_opt with
                | Some c -> c
                | None -> 0
              in
              Some { stage; seconds; count }
            | _ -> None)
          xs
      | None -> []
    in
    Some
      {
        schema;
        version;
        timestamp;
        subcommand;
        argv;
        model = str "model";
        stages;
        metrics = (match member "metrics" doc with Some m -> m | None -> List []);
        report = (match member "report" doc with Some Null | None -> None | Some j -> Some j);
        exit_code = (match int "exit_code" with Some c -> c | None -> 0);
        duration = (match num "duration" with Some d -> d | None -> 0.);
      }
  | _ -> None

(* ---------------- storage ---------------- *)

let default_dir () =
  match Sys.getenv_opt "TPAN_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ -> ".tpan"

let runs_file dir = Filename.concat dir "runs.ndjson"

let append ?dir record =
  let dir = match dir with Some d -> d | None -> default_dir () in
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let fd =
      Unix.openfile (runs_file dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let line = Jsonv.to_string (to_json record) ^ "\n" in
    let bytes = Bytes.of_string line in
    let rec write off =
      if off < Bytes.length bytes then
        write (off + Unix.write fd bytes off (Bytes.length bytes - off))
    in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> write 0);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Sys_error msg -> Error msg

let load ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let path = runs_file dir in
  if not (Sys.file_exists path) then Ok []
  else
    try
      let ic = open_in path in
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Jsonv.of_string line with
             | Ok doc -> (
               match of_json doc with
               | Some r -> records := r :: !records
               | None -> ())
             | Error _ -> ()
         done
       with End_of_file -> close_in ic);
      Ok (List.rev !records)
    with Sys_error msg -> Error msg
