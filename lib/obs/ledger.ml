(* Run records are append-only NDJSON: one JSON object per line in
   <dir>/runs.ndjson. Appends use O_APPEND so concurrent invocations
   interleave at line granularity; a torn or foreign line is skipped on
   load rather than poisoning the whole history. *)

let schema_version = 1

type stage = { stage : string; seconds : float; count : int }

type record = {
  schema : int;
  version : string;
  timestamp : float;
  subcommand : string;
  argv : string list;
  model : string option;
  trace_id : string option;
  stages : stage list;
  metrics : Jsonv.t;
  report : Jsonv.t option;
  exit_code : int;
  duration : float;
}

let make ~version ~timestamp ~subcommand ~argv ?model ?trace_id ?(stages = [])
    ?(metrics = Jsonv.List []) ?report ~exit_code ~duration () =
  {
    schema = schema_version;
    version;
    timestamp;
    subcommand;
    argv;
    model;
    trace_id;
    stages;
    metrics;
    report;
    exit_code;
    duration;
  }

let to_json r =
  Jsonv.Obj
    [
      ("schema", Jsonv.Int r.schema);
      ("version", Jsonv.Str r.version);
      ("timestamp", Jsonv.Float r.timestamp);
      ("subcommand", Jsonv.Str r.subcommand);
      ("argv", Jsonv.List (List.map (fun a -> Jsonv.Str a) r.argv));
      ("model", match r.model with None -> Jsonv.Null | Some m -> Jsonv.Str m);
      ( "trace_id",
        match r.trace_id with None -> Jsonv.Null | Some t -> Jsonv.Str t );
      ( "stages",
        Jsonv.List
          (List.map
             (fun s ->
               Jsonv.Obj
                 [
                   ("stage", Jsonv.Str s.stage);
                   ("seconds", Jsonv.Float s.seconds);
                   ("count", Jsonv.Int s.count);
                 ])
             r.stages) );
      ("metrics", r.metrics);
      ("report", match r.report with None -> Jsonv.Null | Some j -> j);
      ("exit_code", Jsonv.Int r.exit_code);
      ("duration", Jsonv.Float r.duration);
    ]

let of_json doc =
  let open Jsonv in
  let str k = Option.bind (member k doc) to_string_opt in
  let num k = Option.bind (member k doc) to_float_opt in
  let int k = Option.bind (member k doc) to_int_opt in
  match (int "schema", str "version", num "timestamp", str "subcommand") with
  | Some schema, Some version, Some timestamp, Some subcommand ->
    let argv =
      match Option.bind (member "argv" doc) to_list_opt with
      | Some xs -> List.filter_map to_string_opt xs
      | None -> []
    in
    let stages =
      match Option.bind (member "stages" doc) to_list_opt with
      | Some xs ->
        List.filter_map
          (fun s ->
            match
              ( Option.bind (member "stage" s) to_string_opt,
                Option.bind (member "seconds" s) to_float_opt )
            with
            | Some stage, Some seconds ->
              let count =
                match Option.bind (member "count" s) to_int_opt with
                | Some c -> c
                | None -> 0
              in
              Some { stage; seconds; count }
            | _ -> None)
          xs
      | None -> []
    in
    Some
      {
        schema;
        version;
        timestamp;
        subcommand;
        argv;
        model = str "model";
        trace_id = str "trace_id";
        stages;
        metrics = (match member "metrics" doc with Some m -> m | None -> List []);
        report = (match member "report" doc with Some Null | None -> None | Some j -> Some j);
        exit_code = (match int "exit_code" with Some c -> c | None -> 0);
        duration = (match num "duration" with Some d -> d | None -> 0.);
      }
  | _ -> None

(* ---------------- aggregate statistics ---------------- *)

type stats_row = { key : string; runs : int; p50 : float; p95 : float; total : float }

type stats = {
  commands : stats_row list;
  stage_stats : stats_row list;
  exit_codes : (int * int) list;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let row_of key samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  {
    key;
    runs = Array.length arr;
    p50 = percentile arr 0.50;
    p95 = percentile arr 0.95;
    total = Array.fold_left ( +. ) 0. arr;
  }

let group_rows pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (key, v) ->
      let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
      Hashtbl.replace tbl key (v :: prev))
    pairs;
  Hashtbl.fold (fun key vs acc -> row_of key vs :: acc) tbl []
  |> List.sort (fun a b -> compare a.key b.key)

let stats records =
  let commands =
    group_rows (List.map (fun r -> (r.subcommand, r.duration)) records)
  in
  let stage_stats =
    group_rows
      (List.concat_map
         (fun r -> List.map (fun s -> (s.stage, s.seconds)) r.stages)
         records)
  in
  let codes = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let prev =
        match Hashtbl.find_opt codes r.exit_code with Some n -> n | None -> 0
      in
      Hashtbl.replace codes r.exit_code (prev + 1))
    records;
  let exit_codes =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) codes [] |> List.sort compare
  in
  { commands; stage_stats; exit_codes }

let stats_to_json s =
  let rows l =
    Jsonv.List
      (List.map
         (fun r ->
           Jsonv.Obj
             [
               ("name", Jsonv.Str r.key);
               ("runs", Jsonv.Int r.runs);
               ("p50_seconds", Jsonv.Float r.p50);
               ("p95_seconds", Jsonv.Float r.p95);
               ("total_seconds", Jsonv.Float r.total);
             ])
         l)
  in
  Jsonv.Obj
    [
      ("commands", rows s.commands);
      ("stages", rows s.stage_stats);
      ( "exit_codes",
        Jsonv.Obj
          (List.map
             (fun (c, n) -> (string_of_int c, Jsonv.Int n))
             s.exit_codes) );
    ]

let pp_stats fmt s =
  let open Format in
  pp_open_vbox fmt 0;
  let section title rows unit_label =
    if rows <> [] then begin
      fprintf fmt "%s@," title;
      fprintf fmt "  %-28s %6s %10s %10s %10s@," "name" "runs" "p50" "p95" "total";
      List.iter
        (fun r ->
          fprintf fmt "  %-28s %6d %9.3f%s %9.3f%s %9.3f%s@," r.key r.runs r.p50
            unit_label r.p95 unit_label r.total unit_label)
        rows
    end
  in
  section "per-subcommand wall time" s.commands "s";
  section "per-stage wall time" s.stage_stats "s";
  if s.exit_codes <> [] then begin
    fprintf fmt "exit codes@,";
    List.iter (fun (c, n) -> fprintf fmt "  %3d: %d run(s)@," c n) s.exit_codes
  end;
  pp_close_box fmt ()

(* ---------------- storage ---------------- *)

let default_dir () =
  match Sys.getenv_opt "TPAN_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ -> ".tpan"

let runs_file dir = Filename.concat dir "runs.ndjson"

let append ?dir record =
  let dir = match dir with Some d -> d | None -> default_dir () in
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let fd =
      Unix.openfile (runs_file dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let line = Jsonv.to_string (to_json record) ^ "\n" in
    let bytes = Bytes.of_string line in
    let rec write off =
      if off < Bytes.length bytes then
        write (off + Unix.write fd bytes off (Bytes.length bytes - off))
    in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> write 0);
    Ok ()
  with
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Sys_error msg -> Error msg

let load ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let path = runs_file dir in
  if not (Sys.file_exists path) then Ok []
  else
    try
      let ic = open_in path in
      let records = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Jsonv.of_string line with
             | Ok doc -> (
               match of_json doc with
               | Some r -> records := r :: !records
               | None -> ())
             | Error _ -> ()
         done
       with End_of_file -> close_in ic);
      Ok (List.rev !records)
    with Sys_error msg -> Error msg
