module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Tpn = Tpan_core.Tpn
module Pool = Tpan_par.Pool

type stats = {
  horizon : Q.t;
  sim_time : Q.t;
  began : int array;
  completed : int array;
  place_time : Q.t array;
  deadlocked : bool;
}

let m_steps = Tpan_obs.Metrics.counter "sim.simulator.steps"
let m_firings = Tpan_obs.Metrics.counter "sim.simulator.firings"
let m_completions = Tpan_obs.Metrics.counter "sim.simulator.completions"

(* Shared ℚ constants for token counts: the token-time integral reads
   [Q.of_int marking.(p)] on every accounting step, and markings are
   small, so a tiny immutable cache removes that allocation entirely. *)
let qsmall = Array.init 65 Q.of_int
let q_of_count k = if k >= 0 && k < 65 then qsmall.(k) else Q.of_int k

(* ---------------- per-domain scratch arena ----------------

   One replication needs enablement flags, deadlines, firing flags, a
   conflict-set choice buffer and the completion-event heap. None of it
   survives the run, so the arrays live in a [Pool.Scratch] arena: each
   domain allocates them once (growing monotonically to the largest net
   it has simulated) and [run_many] stops churning the minor heap on
   per-run state. The event heap is three parallel flat arrays ordered
   by (time, sequence) — the sequence numbers are unique, so the order
   is total and identical to the old record-based heap. *)

type arena = {
  mutable en_flag : bool array; (* enabled now *)
  mutable en_deadline : Q.t array; (* instant the enabling time elapses *)
  mutable firing : bool array;
  mutable chosen : int array; (* per conflict set: winner this round, -1 none *)
  mutable heap_at : Q.t array;
  mutable heap_seq : int array;
  mutable heap_tr : int array;
  mutable heap_len : int;
}

let arena_key =
  Pool.Scratch.create (fun () ->
      {
        en_flag = [||];
        en_deadline = [||];
        firing = [||];
        chosen = [||];
        heap_at = [||];
        heap_seq = [||];
        heap_tr = [||];
        heap_len = 0;
      })

let arena_ready a ~nt ~ncs =
  if Array.length a.en_flag < nt then begin
    a.en_flag <- Array.make nt false;
    a.en_deadline <- Array.make nt Q.zero;
    a.firing <- Array.make nt false
  end
  else begin
    Array.fill a.en_flag 0 nt false;
    Array.fill a.firing 0 nt false
  end;
  if Array.length a.chosen < ncs then a.chosen <- Array.make ncs (-1);
  if Array.length a.heap_at = 0 then begin
    a.heap_at <- Array.make 64 Q.zero;
    a.heap_seq <- Array.make 64 0;
    a.heap_tr <- Array.make 64 0
  end;
  a.heap_len <- 0

let run ?(seed = 42) ?(warmup = Q.zero) ~horizon tpn =
  Tpan_obs.Trace.with_span "sim.run" @@ fun _sp ->
  if Q.sign warmup < 0 then invalid_arg "Simulator.run: negative warmup";
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Simulator.run: net has symbolic times or frequencies");
  let horizon = Q.add warmup horizon in
  let net = Tpn.net tpn in
  let nt = Net.num_transitions net and np = Net.num_places net in
  (* Flat views of the net and timing spec: the event loop reads these
     thousands of times per run and the assoc-list accessors would
     otherwise dominate. Values are the same ℚ/float the old code read
     through [Tpn] on every event. *)
  let in_p = Array.make nt [||] and in_w = Array.make nt [||] in
  let out_p = Array.make nt [||] and out_w = Array.make nt [||] in
  let enab = Array.make nt Q.zero and fire_t = Array.make nt Q.zero in
  let freq_f = Array.make nt 0. and zero_freq = Array.make nt false in
  let cs_of = Array.make nt 0 in
  for t = 0 to nt - 1 do
    in_p.(t) <- Array.of_list (List.map fst (Net.inputs net t));
    in_w.(t) <- Array.of_list (List.map snd (Net.inputs net t));
    out_p.(t) <- Array.of_list (List.map fst (Net.outputs net t));
    out_w.(t) <- Array.of_list (List.map snd (Net.outputs net t));
    enab.(t) <- Tpn.enabling_q tpn t;
    fire_t.(t) <- Tpn.firing_q tpn t;
    freq_f.(t) <- Q.to_float (Tpn.frequency_q tpn t);
    zero_freq.(t) <- Tpn.is_zero_frequency tpn t;
    cs_of.(t) <- Tpn.conflict_set_of tpn t
  done;
  let cs_members =
    Array.map
      (fun members -> Array.of_list (List.sort Stdlib.compare members))
      (Tpn.conflict_sets tpn)
  in
  let ncs = Array.length cs_members in
  let a = Pool.Scratch.get arena_key in
  arena_ready a ~nt ~ncs;
  let en_flag = a.en_flag and en_deadline = a.en_deadline and firing = a.firing in
  let rng = Rng.create ~seed in
  let marking = Net.initial_marking net in
  let clock = ref Q.zero in
  let last_accounted = ref Q.zero in
  let began = Array.make nt 0 and completed = Array.make nt 0 in
  let place_time = Array.make np Q.zero in
  let seq = ref 0 in
  (* metric bumps batched into locals; flushed once per run *)
  let n_steps = ref 0 and n_firings = ref 0 and n_completions = ref 0 in
  (* ---- completion-event heap (min by (at, seq)) ---- *)
  let heap_less i j =
    let c = Q.compare a.heap_at.(i) a.heap_at.(j) in
    if c <> 0 then c < 0 else a.heap_seq.(i) < a.heap_seq.(j)
  in
  let heap_swap i j =
    let at = a.heap_at.(i) and sq = a.heap_seq.(i) and tr = a.heap_tr.(i) in
    a.heap_at.(i) <- a.heap_at.(j);
    a.heap_seq.(i) <- a.heap_seq.(j);
    a.heap_tr.(i) <- a.heap_tr.(j);
    a.heap_at.(j) <- at;
    a.heap_seq.(j) <- sq;
    a.heap_tr.(j) <- tr
  in
  let heap_push at sq tr =
    let n = a.heap_len in
    if n = Array.length a.heap_at then begin
      let grow arr fill = Array.append arr (Array.make n fill) in
      a.heap_at <- grow a.heap_at Q.zero;
      a.heap_seq <- grow a.heap_seq 0;
      a.heap_tr <- grow a.heap_tr 0
    end;
    a.heap_at.(n) <- at;
    a.heap_seq.(n) <- sq;
    a.heap_tr.(n) <- tr;
    a.heap_len <- n + 1;
    let i = ref n in
    while !i > 0 && heap_less !i ((!i - 1) / 2) do
      heap_swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let heap_pop_trans () =
    let tr = a.heap_tr.(0) in
    let n = a.heap_len - 1 in
    a.heap_len <- n;
    heap_swap 0 n;
    a.heap_at.(n) <- Q.zero (* release the popped time value *);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < n && heap_less l !m then m := l;
      if r < n && heap_less r !m then m := r;
      if !m = !i then continue_ := false
      else begin
        heap_swap !i !m;
        i := !m
      end
    done;
    tr
  in
  let enabled t =
    let ps = in_p.(t) and ws = in_w.(t) in
    let n = Array.length ps in
    let ok = ref true in
    for k = 0 to n - 1 do
      if marking.(ps.(k)) < ws.(k) then ok := false
    done;
    !ok
  in
  (* advance the token-time integrals to the current clock *)
  let account () =
    (* integrate only the post-warmup part of the elapsed interval *)
    let from = Q.max !last_accounted warmup in
    let dt = Q.sub !clock from in
    if Q.sign dt > 0 then begin
      for p = 0 to np - 1 do
        if marking.(p) > 0 then
          place_time.(p) <- Q.add place_time.(p) (Q.mul dt (q_of_count marking.(p)))
      done
    end;
    if Q.compare !clock !last_accounted > 0 then last_accounted := !clock
  in
  (* re-derive enablement flags after any marking change *)
  let refresh () =
    for t = 0 to nt - 1 do
      let en = enabled t in
      if en && firing.(t) then
        raise
          (Tpn.Unsupported
             (Printf.sprintf "transition %s enabled while firing (simulation)"
                (Net.trans_name net t)));
      if en_flag.(t) then begin
        if not en then en_flag.(t) <- false
      end
      else if en then begin
        en_flag.(t) <- true;
        en_deadline.(t) <- Q.add !clock enab.(t)
      end
    done
  in
  let counting () = Q.compare !clock warmup >= 0 in
  let begin_firing t =
    incr n_firings;
    if counting () then began.(t) <- began.(t) + 1;
    let ps = in_p.(t) and ws = in_w.(t) in
    for k = 0 to Array.length ps - 1 do
      marking.(ps.(k)) <- marking.(ps.(k)) - ws.(k)
    done;
    en_flag.(t) <- false;
    if Q.is_zero fire_t.(t) then begin
      if counting () then completed.(t) <- completed.(t) + 1;
      let ps = out_p.(t) and ws = out_w.(t) in
      for k = 0 to Array.length ps - 1 do
        marking.(ps.(k)) <- marking.(ps.(k)) + ws.(k)
      done
    end
    else begin
      firing.(t) <- true;
      incr seq;
      heap_push (Q.add !clock fire_t.(t)) !seq t
    end
  in
  (* a transition whose enabling time has elapsed at the current instant *)
  let firable t = en_flag.(t) && Q.compare en_deadline.(t) !clock <= 0 in
  (* fire every transition that must begin firing at the current instant;
     conflict sets have disjoint input places, so the per-set choices are
     independent. Two-phase per round — choose for every set against the
     pre-firing snapshot (in ascending set order, members ascending), then
     fire all winners — so the RNG draw sequence is exactly the old one. *)
  let rec fire_all_now () =
    let any = ref false in
    for cs = 0 to ncs - 1 do
      let members = cs_members.(cs) in
      (* positive-frequency firable members, ascending *)
      let pos = ref [] and npos = ref 0 in
      let sole = ref (-1) and nfir = ref 0 in
      for k = Array.length members - 1 downto 0 do
        let t = members.(k) in
        if firable t then begin
          incr nfir;
          sole := t;
          if not zero_freq.(t) then begin
            pos := (t, freq_f.(t)) :: !pos;
            incr npos
          end
        end
      done;
      a.chosen.(cs) <-
        (if !nfir = 0 then -1
         else if !npos = 1 then fst (List.hd !pos)
         else if !npos = 0 then begin
           if !nfir = 1 then !sole
           else raise (Tpn.Unsupported "decision between several zero-frequency transitions")
         end
         else Rng.choose_weighted rng !pos);
      if a.chosen.(cs) >= 0 then any := true
    done;
    if !any then begin
      for cs = 0 to ncs - 1 do
        if a.chosen.(cs) >= 0 then begin_firing a.chosen.(cs)
      done;
      refresh ();
      fire_all_now ()
    end
  in
  let flush_metrics () =
    Tpan_obs.Metrics.Counter.add m_steps !n_steps;
    Tpan_obs.Metrics.Counter.add m_firings !n_firings;
    Tpan_obs.Metrics.Counter.add m_completions !n_completions
  in
  Fun.protect ~finally:flush_metrics @@ fun () ->
  refresh ();
  fire_all_now ();
  let deadlocked = ref false in
  let running = ref true in
  while !running do
    incr n_steps;
    (* gated to every 1024 steps: the checkpoint never touches the RNG
       or the trace output, so simulation streams stay bit-identical *)
    if !n_steps land 1023 = 0 then Tpan_obs.Cancel.checkpoint ();
    (* next moment anything must happen *)
    let next_firable = ref None in
    for t = 0 to nt - 1 do
      if en_flag.(t) then begin
        match !next_firable with
        | None -> next_firable := Some en_deadline.(t)
        | Some cur -> if Q.compare en_deadline.(t) cur < 0 then next_firable := Some en_deadline.(t)
      end
    done;
    let next_completion = if a.heap_len > 0 then Some a.heap_at.(0) else None in
    let tnext =
      match (!next_firable, next_completion) with
      | None, None -> None
      | Some x, None -> Some x
      | None, Some y -> Some y
      | Some x, Some y -> Some (Q.min x y)
    in
    match tnext with
    | None ->
      deadlocked := true;
      running := false
    | Some t when Q.compare t horizon > 0 ->
      clock := horizon;
      account ();
      running := false
    | Some t ->
      clock := t;
      account ();
      (* all completions scheduled for this instant *)
      while a.heap_len > 0 && Q.equal a.heap_at.(0) !clock do
        let tr = heap_pop_trans () in
        incr n_completions;
        firing.(tr) <- false;
        if counting () then completed.(tr) <- completed.(tr) + 1;
        let ps = out_p.(tr) and ws = out_w.(tr) in
        for k = 0 to Array.length ps - 1 do
          marking.(ps.(k)) <- marking.(ps.(k)) + ws.(k)
        done
      done;
      refresh ();
      fire_all_now ()
  done;
  account ();
  {
    horizon = Q.sub horizon warmup;
    sim_time = Q.max Q.zero (Q.sub !clock warmup);
    began;
    completed;
    place_time;
    deadlocked = !deadlocked;
  }

let throughput stats t =
  if Q.is_zero stats.sim_time then 0.
  else float_of_int stats.completed.(t) /. Q.to_float stats.sim_time

let mean_tokens stats p =
  if Q.is_zero stats.sim_time then 0.
  else Q.to_float stats.place_time.(p) /. Q.to_float stats.sim_time

let utilization stats p = Float.min 1.0 (mean_tokens stats p)

type estimate = { mean : float; std_error : float; ci95 : float * float; runs : int }

let replicate ?(seed = 42) ?warmup ~runs ~horizon tpn output =
  if runs <= 0 then invalid_arg "Simulator.replicate: runs must be positive";
  let master = Rng.create ~seed in
  let acc = Stats.Running.create () in
  for _ = 1 to runs do
    let s = Int64.to_int (Rng.next_int64 master) land max_int in
    let st = run ~seed:s ?warmup ~horizon tpn in
    Stats.Running.add acc (output st)
  done;
  {
    mean = Stats.Running.mean acc;
    std_error = Stats.Running.std_error acc;
    ci95 = Stats.Running.ci95 acc;
    runs;
  }

let run_result ?seed ?warmup ~horizon tpn =
  match run ?seed ?warmup ~horizon tpn with
  | st -> Ok st
  | exception e -> (
    match Tpan_core.Error.of_exn e with
    | Some err -> Error err
    | None -> (
      match e with
      | Invalid_argument msg -> Error (Tpan_core.Error.Invalid_input msg)
      | e -> raise e))

let run_many ?(seed = 42) ?warmup ?jobs ~runs ~horizon tpn output =
  if runs <= 0 then invalid_arg "Simulator.run_many: runs must be positive";
  (* Seeds are drawn from the master stream sequentially — the same
     derivation as [replicate] — so replication i sees the same seed no
     matter how many domains run the batch. *)
  let master = Rng.create ~seed in
  let seeds =
    List.init runs (fun _ -> Int64.to_int (Rng.next_int64 master) land max_int)
  in
  let outputs =
    Tpan_par.Pool.map ?jobs (fun s -> output (run ~seed:s ?warmup ~horizon tpn)) seeds
  in
  let acc = Stats.Running.create () in
  List.iter (Stats.Running.add acc) outputs;
  {
    mean = Stats.Running.mean acc;
    std_error = Stats.Running.std_error acc;
    ci95 = Stats.Running.ci95 acc;
    runs;
  }
