module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Tpn = Tpan_core.Tpn

type stats = {
  horizon : Q.t;
  sim_time : Q.t;
  began : int array;
  completed : int array;
  place_time : Q.t array;
  deadlocked : bool;
}

type event = { at : Q.t; seq : int; trans : Net.trans }

let m_steps = Tpan_obs.Metrics.counter "sim.simulator.steps"
let m_firings = Tpan_obs.Metrics.counter "sim.simulator.firings"
let m_completions = Tpan_obs.Metrics.counter "sim.simulator.completions"

let run ?(seed = 42) ?(warmup = Q.zero) ~horizon tpn =
  Tpan_obs.Trace.with_span "sim.run" @@ fun _sp ->
  if Q.sign warmup < 0 then invalid_arg "Simulator.run: negative warmup";
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Simulator.run: net has symbolic times or frequencies");
  let horizon = Q.add warmup horizon in
  let net = Tpn.net tpn in
  let nt = Net.num_transitions net and np = Net.num_places net in
  let rng = Rng.create ~seed in
  let marking = Net.initial_marking net in
  let clock = ref Q.zero in
  let last_accounted = ref Q.zero in
  let began = Array.make nt 0 and completed = Array.make nt 0 in
  let place_time = Array.make np Q.zero in
  let enabled_since = Array.make nt None in
  let firing = Array.make nt false in
  let completions = Heap.create ~cmp:(fun a b ->
      let c = Q.compare a.at b.at in
      if c <> 0 then c else Stdlib.compare a.seq b.seq) ()
  in
  let seq = ref 0 in
  let enabled t = List.for_all (fun (p, w) -> marking.(p) >= w) (Net.inputs net t) in
  (* advance the token-time integrals to the current clock *)
  let account () =
    (* integrate only the post-warmup part of the elapsed interval *)
    let from = Q.max !last_accounted warmup in
    let dt = Q.sub !clock from in
    if Q.sign dt > 0 then begin
      for p = 0 to np - 1 do
        if marking.(p) > 0 then
          place_time.(p) <- Q.add place_time.(p) (Q.mul dt (Q.of_int marking.(p)))
      done
    end;
    if Q.compare !clock !last_accounted > 0 then last_accounted := !clock
  in
  (* re-derive enablement flags after any marking change *)
  let refresh () =
    for t = 0 to nt - 1 do
      let en = enabled t in
      if en && firing.(t) then
        raise
          (Tpn.Unsupported
             (Printf.sprintf "transition %s enabled while firing (simulation)"
                (Net.trans_name net t)));
      match enabled_since.(t) with
      | Some _ when not en -> enabled_since.(t) <- None
      | None when en -> enabled_since.(t) <- Some !clock
      | _ -> ()
    done
  in
  let counting () = Q.compare !clock warmup >= 0 in
  let begin_firing t =
    Tpan_obs.Metrics.Counter.incr m_firings;
    if counting () then began.(t) <- began.(t) + 1;
    List.iter (fun (p, w) -> marking.(p) <- marking.(p) - w) (Net.inputs net t);
    enabled_since.(t) <- None;
    let f = Tpn.firing_q tpn t in
    if Q.is_zero f then begin
      if counting () then completed.(t) <- completed.(t) + 1;
      List.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) (Net.outputs net t)
    end
    else begin
      firing.(t) <- true;
      incr seq;
      Heap.push completions { at = Q.add !clock f; seq = !seq; trans = t }
    end
  in
  (* fire every transition that must begin firing at the current instant;
     conflict sets have disjoint input places, so the per-set choices are
     independent *)
  let rec fire_all_now () =
    let firable =
      List.filter
        (fun t ->
          match enabled_since.(t) with
          | None -> false
          | Some s -> Q.compare (Q.add s (Tpn.enabling_q tpn t)) !clock <= 0)
        (Net.transitions net)
    in
    if firable <> [] then begin
      let groups = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let cs = Tpn.conflict_set_of tpn t in
          Hashtbl.replace groups cs (t :: Option.value ~default:[] (Hashtbl.find_opt groups cs)))
        (List.rev firable);
      let group_list =
        Hashtbl.fold (fun cs ts acc -> (cs, ts) :: acc) groups []
        |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
      in
      let chosen =
        List.map
          (fun (_, members) ->
            let pos = List.filter (fun t -> not (Tpn.is_zero_frequency tpn t)) members in
            match (pos, members) with
            | [ t ], _ | [], [ t ] -> t
            | [], _ ->
              raise (Tpn.Unsupported "decision between several zero-frequency transitions")
            | _ :: _ :: _, _ ->
              Rng.choose_weighted rng
                (List.map (fun t -> (t, Q.to_float (Tpn.frequency_q tpn t))) pos))
          group_list
      in
      List.iter begin_firing chosen;
      refresh ();
      fire_all_now ()
    end
  in
  refresh ();
  fire_all_now ();
  let deadlocked = ref false in
  let running = ref true in
  while !running do
    Tpan_obs.Metrics.Counter.incr m_steps;
    (* next moment anything must happen *)
    let next_firable =
      List.fold_left
        (fun acc t ->
          match enabled_since.(t) with
          | None -> acc
          | Some s ->
            let tf = Q.add s (Tpn.enabling_q tpn t) in
            (match acc with None -> Some tf | Some cur -> Some (Q.min cur tf)))
        None (Net.transitions net)
    in
    let next_completion = Option.map (fun e -> e.at) (Heap.peek completions) in
    let tnext =
      match (next_firable, next_completion) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (Q.min a b)
    in
    match tnext with
    | None ->
      deadlocked := true;
      running := false
    | Some t when Q.compare t horizon > 0 ->
      clock := horizon;
      account ();
      running := false
    | Some t ->
      clock := t;
      account ();
      (* all completions scheduled for this instant *)
      let rec drain () =
        match Heap.peek completions with
        | Some e when Q.equal e.at !clock ->
          ignore (Heap.pop_exn completions);
          Tpan_obs.Metrics.Counter.incr m_completions;
          firing.(e.trans) <- false;
          if counting () then completed.(e.trans) <- completed.(e.trans) + 1;
          List.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) (Net.outputs net e.trans);
          drain ()
        | _ -> ()
      in
      drain ();
      refresh ();
      fire_all_now ()
  done;
  account ();
  {
    horizon = Q.sub horizon warmup;
    sim_time = Q.max Q.zero (Q.sub !clock warmup);
    began;
    completed;
    place_time;
    deadlocked = !deadlocked;
  }

let throughput stats t =
  if Q.is_zero stats.sim_time then 0.
  else float_of_int stats.completed.(t) /. Q.to_float stats.sim_time

let mean_tokens stats p =
  if Q.is_zero stats.sim_time then 0.
  else Q.to_float stats.place_time.(p) /. Q.to_float stats.sim_time

let utilization stats p = Float.min 1.0 (mean_tokens stats p)

type estimate = { mean : float; std_error : float; ci95 : float * float; runs : int }

let replicate ?(seed = 42) ?warmup ~runs ~horizon tpn output =
  if runs <= 0 then invalid_arg "Simulator.replicate: runs must be positive";
  let master = Rng.create ~seed in
  let acc = Stats.Running.create () in
  for _ = 1 to runs do
    let s = Int64.to_int (Rng.next_int64 master) land max_int in
    let st = run ~seed:s ?warmup ~horizon tpn in
    Stats.Running.add acc (output st)
  done;
  {
    mean = Stats.Running.mean acc;
    std_error = Stats.Running.std_error acc;
    ci95 = Stats.Running.ci95 acc;
    runs;
  }

let run_result ?seed ?warmup ~horizon tpn =
  match run ?seed ?warmup ~horizon tpn with
  | st -> Ok st
  | exception e -> (
    match Tpan_core.Error.of_exn e with
    | Some err -> Error err
    | None -> (
      match e with
      | Invalid_argument msg -> Error (Tpan_core.Error.Invalid_input msg)
      | e -> raise e))

let run_many ?(seed = 42) ?warmup ?jobs ~runs ~horizon tpn output =
  if runs <= 0 then invalid_arg "Simulator.run_many: runs must be positive";
  (* Seeds are drawn from the master stream sequentially — the same
     derivation as [replicate] — so replication i sees the same seed no
     matter how many domains run the batch. *)
  let master = Rng.create ~seed in
  let seeds =
    List.init runs (fun _ -> Int64.to_int (Rng.next_int64 master) land max_int)
  in
  let outputs =
    Tpan_par.Pool.map ?jobs (fun s -> output (run ~seed:s ?warmup ~horizon tpn)) seeds
  in
  let acc = Stats.Running.create () in
  List.iter (Stats.Running.add acc) outputs;
  {
    mean = Stats.Running.mean acc;
    std_error = Stats.Running.std_error acc;
    ci95 = Stats.Running.ci95 acc;
    runs;
  }
