(* Backing store is an ['a option array] so vacated slots can be cleared:
   with a bare ['a array], [pop] would leave the popped element reachable
   at [data.(size)] and [grow] would fill the fresh capacity with copies
   of a live element, pinning dead simulation events against the GC for
   the lifetime of the heap. [None] is the explicit dummy. *)

type 'a t = { mutable data : 'a option array; mutable size : int; cmp : 'a -> 'a -> int }

let create ~cmp () = { data = [||]; size = 0; cmp }

let length h = h.size
let is_empty h = h.size = 0

let get h i = match h.data.(i) with Some x -> x | None -> assert false

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap None in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (get h i) (get h parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp (get h l) (get h !smallest) < 0 then smallest := l;
  if r < h.size && h.cmp (get h r) (get h !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  grow h;
  h.data.(h.size) <- Some x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    top
  end

let pop_exn h = match pop h with Some x -> x | None -> raise Not_found

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

let to_list h = List.init h.size (fun i -> get h i)
