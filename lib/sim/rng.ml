(* splitmix64: tiny, fast, and passes BigCrush when used as a 64-bit
   generator; more than enough for protocol Monte-Carlo. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  (* top 53 bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  int_of_float (float t *. float_of_int bound)

let split t = { state = next_int64 t }

let choose_weighted t weighted =
  if weighted = [] then invalid_arg "Rng.choose_weighted: empty";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weighted in
  if total <= 0. then invalid_arg "Rng.choose_weighted: all-zero weights";
  let x = float t *. total in
  (* Float round-off can push the cumulative sum past [x] without any
     alternative matching; the fallback must then be the last entry that
     could legitimately fire, not whatever happens to sit last in the
     list — a trailing zero-weight alternative must never be chosen. *)
  let last_positive =
    List.fold_left (fun acc (v, w) -> if w > 0. then Some v else acc) None weighted
  in
  let rec pick acc = function
    | [] -> Option.get last_positive
    | (v, w) :: rest -> if w > 0. && x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0. weighted
