(** Monte-Carlo discrete-event simulation of concrete Timed Petri Nets.

    This is an independent implementation of the semantics (event queue over
    wall-clock time, no RET/RFT state vectors), used to cross-validate the
    analytic performance expressions: simulated throughput must converge to
    the decision-graph prediction.

    Time is exact ℚ during execution, so simultaneity (e.g. an ack arriving
    exactly at the timeout) is resolved exactly as in the analysis. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn

type stats = {
  horizon : Q.t;
  sim_time : Q.t;  (** actual simulated span; < horizon iff deadlocked *)
  began : int array;  (** firings started, per transition *)
  completed : int array;  (** firings finished, per transition *)
  place_time : Q.t array;  (** ∫ tokens(p) dt, per place *)
  deadlocked : bool;
}

val run : ?seed:int -> ?warmup:Q.t -> horizon:Q.t -> Tpn.t -> stats
(** Simulate from the initial marking until [horizon] (or deadlock).
    [warmup] (default 0) discards the initial transient: counters and
    place-time integrals only accumulate after that instant, and reported
    [sim_time]/[horizon] measure the post-warmup span — reducing
    initialization bias in steady-state estimates.
    @raise Tpn.Unsupported on symbolic nets or nets violating the paper's
    modelling assumptions
    @raise Invalid_argument if [warmup < 0] *)

val throughput : stats -> Net.trans -> float
(** Completions per unit time. *)

val mean_tokens : stats -> Net.place -> float
(** Time-averaged token count. *)

val utilization : stats -> Net.place -> float
(** Fraction of time the place was marked — exact only for safe places
    (token count ≤ 1), otherwise an upper estimate [min 1 mean_tokens]. *)

type estimate = { mean : float; std_error : float; ci95 : float * float; runs : int }

val replicate :
  ?seed:int -> ?warmup:Q.t -> runs:int -> horizon:Q.t -> Tpn.t -> (stats -> float) -> estimate
(** Independent replications of an output functional (e.g.
    [fun s -> throughput s t]). *)

val run_result :
  ?seed:int -> ?warmup:Q.t -> horizon:Q.t -> Tpn.t -> (stats, Tpan_core.Error.t) result
(** {!run} with its failure modes returned as values. *)

val run_many :
  ?seed:int -> ?warmup:Q.t -> ?jobs:int -> runs:int -> horizon:Q.t ->
  Tpn.t -> (stats -> float) -> estimate
(** Parallel {!replicate}: per-replication seeds are split from the master
    seed exactly as {!replicate} does, the replications run on a
    [Tpan_par.Pool], and the outputs fold into the running statistics in
    replication order — so the estimate is bit-identical to {!replicate}
    for any [jobs] (default {!Tpan_par.Pool.default_jobs}).
    @raise Invalid_argument if [runs <= 0] *)
