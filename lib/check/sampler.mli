(** Sampling rational models of a net's timing-constraint system.

    The differential checker needs concrete delay/frequency assignments
    that satisfy the net's declared constraints — the region over which
    the paper claims its symbolic throughput expression is valid. One
    interior point comes from Fourier–Motzkin ({!Fourier_motzkin.find_model},
    the same machinery behind the oracle's witness); {!sample} then
    perturbs that point multiplicatively with rejection against
    {!Tpan_symbolic.Constraints.satisfies}, so repeated draws spread over
    the feasible region instead of re-testing one corner. *)

module Q = Tpan_mathkit.Q

type point = (string * Q.t) list
(** Bindings keyed by variable display name (["E(t3)"], ["f(t4)"], …) —
    the key format of {!Tpan_core.Tpn.bind_times} and
    {!Tpan_perf.Measures.Symbolic.eval_at}. *)

val vars : Tpan_core.Tpn.t -> Tpan_symbolic.Var.t list
(** Every symbolic time {e and} frequency symbol of the net, in
    transition order, deduplicated. *)

val base_point : Tpan_core.Tpn.t -> point option
(** An interior rational model of the constraint system covering every
    symbol of {!vars} (frequency symbols default to 1, time symbols
    absent from the constraints to 1). [None] when the constraints are
    inconsistent. *)

val satisfies : Tpan_core.Tpn.t -> point -> bool
(** Does the point (variables missing from it default to 1) satisfy the
    net's constraint system, with every value non-negative? *)

val sample : rng:Tpan_sim.Rng.t -> Tpan_core.Tpn.t -> point option
(** A randomized feasible point: each coordinate of {!base_point} is
    scaled by a random rational factor, retrying with shrinking
    perturbation until {!Tpan_symbolic.Constraints.satisfies} accepts
    (the base point itself is the last resort, so [Some] draws are
    always models). [None] iff {!base_point} is [None]. *)
