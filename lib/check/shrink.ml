module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module Printer = Tpan_dsl.Printer

(* Rebuild the net keeping only the selected transitions/places. Specs are
   copied through the accessors; constraints survive iff every symbol they
   mention still occurs in a kept spec (a dangling symbol would make the
   reduced system claim things about nothing). *)
let rebuild tpn ~keep_trans ~keep_place =
  let net = Tpn.net tpn in
  let b = Net.builder (Net.name net) in
  let init = Net.initial_marking net in
  let newp = Array.make (Net.num_places net) (-1) in
  List.iter
    (fun p ->
      if keep_place p then newp.(p) <- Net.add_place b ~init:init.(p) (Net.place_name net p))
    (Net.places net);
  let specs = ref [] in
  let kept_syms = ref [] in
  List.iter
    (fun t ->
      if keep_trans t then (
        let name = Net.trans_name net t in
        let map = List.map (fun (p, w) -> (newp.(p), w)) in
        ignore
          (Net.add_transition b ~name
             ~inputs:(map (Net.inputs net t))
             ~outputs:(map (Net.outputs net t)));
        let spec =
          {
            Tpn.enabling = Tpn.enabling tpn t;
            firing = Tpn.firing tpn t;
            frequency = Tpn.frequency tpn t;
          }
        in
        let note = function
          | Tpn.Sym v -> kept_syms := v :: !kept_syms
          | Tpn.Fixed _ -> ()
        in
        note spec.Tpn.enabling;
        note spec.Tpn.firing;
        (match spec.Tpn.frequency with
        | Tpn.Freq_sym v -> kept_syms := v :: !kept_syms
        | Tpn.Freq _ -> ());
        specs := (name, spec) :: !specs))
    (Net.transitions net);
  let keep_var v = List.exists (Var.equal v) !kept_syms in
  let cs =
    C.constraints (Tpn.constraints tpn)
    |> List.filter (fun (_, _, lhs, rhs) ->
           List.for_all keep_var (Lin.vars lhs) && List.for_all keep_var (Lin.vars rhs))
    |> C.of_list
  in
  Tpn.make ~constraints:cs (Net.build b) (List.rev !specs)

let drop_transition tpn name =
  let net = Tpn.net tpn in
  match Net.trans_of_name net name with
  | exception Not_found -> None
  | dropped -> (
    try Some (rebuild tpn ~keep_trans:(fun t -> t <> dropped) ~keep_place:(fun _ -> true))
    with _ -> None)

let prune_places tpn =
  let net = Tpn.net tpn in
  let used = Array.make (Net.num_places net) false in
  List.iter
    (fun t ->
      List.iter (fun (p, _) -> used.(p) <- true) (Net.inputs net t);
      List.iter (fun (p, _) -> used.(p) <- true) (Net.outputs net t))
    (Net.transitions net);
  if Array.for_all Fun.id used then None
  else
    try Some (rebuild tpn ~keep_trans:(fun _ -> true) ~keep_place:(fun p -> used.(p)))
    with _ -> None

let restrict tpn point =
  let names = List.map Var.name (Sampler.vars tpn) in
  List.filter (fun (n, _) -> List.mem n names) point

let minimize ?(structure = true) ~still_fails tpn point =
  let accepts tpn' pt' = Sampler.satisfies tpn' pt' && still_fails tpn' pt' in
  let rec struct_pass (tpn, pt) =
    let net = Tpn.net tpn in
    let rec try_drop = function
      | [] -> None
      | name :: rest -> (
        match drop_transition tpn name with
        | Some tpn' ->
          let pt' = restrict tpn' pt in
          if accepts tpn' pt' then Some (tpn', pt') else try_drop rest
        | None -> try_drop rest)
    in
    match try_drop (List.map (Net.trans_name net) (Net.transitions net)) with
    | Some smaller -> struct_pass smaller
    | None -> (tpn, pt)
  in
  let tpn, point = if structure then struct_pass (tpn, point) else (tpn, point) in
  let tpn =
    if not structure then tpn
    else
      (* places never carry symbols, so the point is unaffected *)
      match prune_places tpn with
      | Some tpn' when accepts tpn' point -> tpn'
      | _ -> tpn
  in
  let point =
    List.fold_left
      (fun pt (name, q) ->
        let attempt v =
          if Q.equal v q then None
          else
            let pt' = List.map (fun (n, x) -> if n = name then (n, v) else (n, x)) pt in
            if accepts tpn pt' then Some pt' else None
        in
        match attempt Q.one with
        | Some pt' -> pt'
        | None -> (
          let rounded = Q.of_int (int_of_float (Float.round (Q.to_float q))) in
          let rounded = if Q.sign rounded <= 0 then Q.one else rounded in
          match attempt rounded with Some pt' -> pt' | None -> pt))
      point point
  in
  (tpn, point)

let reproducer tpn point =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# tpan check reproducer: minimized failing net and point\n";
  List.iter
    (fun (n, q) -> Buffer.add_string buf (Printf.sprintf "# %s = %s\n" n (Q.to_string q)))
    point;
  (* Bind the point so the snippet is fully concrete and runnable on its
     own; if binding is rejected (partial point), ship the symbolic net —
     the comment header still pins the values. *)
  (match try Some (Tpn.bind_times tpn point) with _ -> None with
  | Some concrete -> Buffer.add_string buf (Printer.to_string concrete)
  | None -> Buffer.add_string buf (Printer.to_string tpn));
  Buffer.contents buf
