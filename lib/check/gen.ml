module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module Rng = Tpan_sim.Rng

type case = { seed : int; tpn : Tpn.t; delivery : string; description : string }

let case ~seed =
  let rng = Rng.create ~seed in
  (* Structural knobs. Hop 1 is always lossy so every net exercises a
     probabilistic decision and the timeout recovery path. *)
  let fwd_hops = 1 + Rng.int rng 2 in
  let hop2_lossy = fwd_hops = 2 && Rng.int rng 2 = 0 in
  let recv_variants = 1 + Rng.int rng 2 in
  let ack_lossy = Rng.int rng 2 = 0 in
  let direct_restart = Rng.int rng 2 = 0 in
  let b = Net.builder (Printf.sprintf "gen%d" seed) in
  let ready = Net.add_place b ~init:1 "ready" in
  let wait = Net.add_place b "wait" in
  let medium =
    Array.init fwd_hops (fun i -> Net.add_place b (Printf.sprintf "m%d" (i + 1)))
  in
  let rx = Net.add_place b "rx" in
  let rdy = Net.add_place b ~init:1 "rdy" in
  let am = Net.add_place b "am" in
  let acked = Net.add_place b "acked" in
  let prep = if direct_restart then None else Some (Net.add_place b "prep") in
  let specs = ref [] in
  let constraints = ref [] in
  (* Success-path firing delays, timer-armed to completion-firable: the
     timeout's enabling time must strictly dominate their sum (the
     generated analogue of the paper's stop-and-wait constraint (1)). *)
  let path_delays = ref [] in
  let t name inputs outputs spec_ =
    ignore (Net.add_transition b ~name ~inputs ~outputs);
    specs := (name, spec_) :: !specs
  in
  let s = Tpn.spec in
  let fs name = Tpn.Sym (Var.firing name) in
  (* A probabilistic conflict pair. Symbolic analyzability requires the
     alternatives to share their firing delay (the analogue of stop-and-
     wait constraints (3)/(4)); encode that either as a literally shared
     symbol or as two symbols tied by an explicit equality — both forms
     must round-trip through the whole pipeline. *)
  let npairs = ref 0 in
  let pair ~inputs ~win_name ~win_out ~lose_name ~lose_out =
    incr npairs;
    let shared = Rng.int rng 2 = 0 in
    let win_sym = Var.firing win_name in
    let lose_sym = if shared then win_sym else Var.firing lose_name in
    if not shared then
      constraints :=
        (Printf.sprintf "eq%d" !npairs, `Eq, Lin.var lose_sym, Lin.var win_sym)
        :: !constraints;
    let win_freq, lose_freq =
      if Rng.int rng 2 = 0 then (
        let k = 3 + Rng.int rng 8 in
        let loss = Q.of_ints 1 k in
        (Tpn.Freq (Q.sub Q.one loss), Tpn.Freq loss))
      else (Tpn.Freq_sym (Var.frequency win_name), Tpn.Freq_sym (Var.frequency lose_name))
    in
    t win_name inputs win_out (s ~firing:(Tpn.Sym win_sym) ~frequency:win_freq ());
    t lose_name inputs lose_out (s ~firing:(Tpn.Sym lose_sym) ~frequency:lose_freq ());
    path_delays := Lin.var win_sym :: !path_delays
  in
  (* Sender: send arms the timer; the timeout has priority 0 so a firable
     completion always wins (mirrors t3/t7 of the paper's model). *)
  t "send" [ (ready, 1) ] [ (medium.(0), 1); (wait, 1) ] (s ~firing:(fs "send") ());
  t "to" [ (wait, 1) ] [ (ready, 1) ]
    (s ~enabling:(Tpn.Sym (Var.enabling "to")) ~firing:(fs "to")
       ~frequency:(Tpn.Freq Q.zero) ());
  let hop_target i = if i + 1 < fwd_hops then medium.(i + 1) else rx in
  pair
    ~inputs:[ (medium.(0), 1) ]
    ~win_name:"fwd1"
    ~win_out:[ (hop_target 0, 1) ]
    ~lose_name:"lose1" ~lose_out:[];
  if fwd_hops = 2 then
    if hop2_lossy then
      pair
        ~inputs:[ (medium.(1), 1) ]
        ~win_name:"fwd2"
        ~win_out:[ (rx, 1) ]
        ~lose_name:"lose2" ~lose_out:[]
    else (
      t "fwd2" [ (medium.(1), 1) ] [ (rx, 1) ] (s ~firing:(fs "fwd2") ());
      path_delays := Lin.var (Var.firing "fwd2") :: !path_delays);
  (* Receiver, optionally with two competing (conflicting) variants that
     both acknowledge — a pure decision node in the reachability graph. *)
  if recv_variants = 2 then
    pair
      ~inputs:[ (rx, 1); (rdy, 1) ]
      ~win_name:"recv"
      ~win_out:[ (am, 1); (rdy, 1) ]
      ~lose_name:"recv_b"
      ~lose_out:[ (am, 1); (rdy, 1) ]
  else (
    t "recv" [ (rx, 1); (rdy, 1) ] [ (am, 1); (rdy, 1) ] (s ~firing:(fs "recv") ());
    path_delays := Lin.var (Var.firing "recv") :: !path_delays);
  if ack_lossy then
    pair
      ~inputs:[ (am, 1) ]
      ~win_name:"adel"
      ~win_out:[ (acked, 1) ]
      ~lose_name:"alose" ~lose_out:[]
  else (
    t "adel" [ (am, 1) ] [ (acked, 1) ] (s ~firing:(fs "adel") ());
    path_delays := Lin.var (Var.firing "adel") :: !path_delays);
  let done_out = match prep with None -> [ (ready, 1) ] | Some p -> [ (p, 1) ] in
  t "done" [ (acked, 1); (wait, 1) ] done_out (s ~firing:(fs "done") ());
  (match prep with
  | None -> ()
  | Some p -> t "prep" [ (p, 1) ] [ (ready, 1) ] (s ~firing:(fs "prep") ()));
  let sum = List.fold_left Lin.add Lin.zero !path_delays in
  constraints := ("timeout", `Gt, Lin.var (Var.enabling "to"), sum) :: !constraints;
  let tpn =
    Tpn.make
      ~constraints:(C.of_list (List.rev !constraints))
      (Net.build b) (List.rev !specs)
  in
  let description =
    Printf.sprintf "stopwait family: %d fwd hop%s%s, %d recv variant%s, %s ack, %s restart"
      fwd_hops
      (if fwd_hops > 1 then "s" else "")
      (if fwd_hops = 2 then if hop2_lossy then " (hop2 lossy)" else " (hop2 reliable)"
       else "")
      recv_variants
      (if recv_variants > 1 then "s" else "")
      (if ack_lossy then "lossy" else "reliable")
      (if direct_restart then "direct" else "staged")
  in
  { seed; tpn; delivery = "done"; description }
