(** Seeded random generator of analyzable Timed Petri Nets.

    Draws from the stop-and-wait family the paper studies — a send/ack
    loop with lossy medium hops (structural conflict sets), a timeout
    recovery transition (enabling time + zero frequency), and optional
    competing receiver variants — because that family exercises every
    mechanism of the pipeline (conflict resolution, enabling-time
    residues, symbolic minima) while staying live and bounded by
    construction. Each net ships with a constraint set sufficient for
    symbolic TRG construction: the timeout strictly exceeds the sum of
    every other delay, and conflicting alternatives share their firing
    delay (either literally, via a shared symbol, or through an equality
    constraint — both forms are generated).

    Same seed, same net: the generator is a pure function of [seed]. *)

type case = {
  seed : int;
  tpn : Tpan_core.Tpn.t;  (** symbolic net with its constraint set *)
  delivery : string;  (** the completion transition whose throughput to check *)
  description : string;  (** one-line shape summary, for reports *)
}

val case : seed:int -> case
