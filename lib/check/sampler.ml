module Q = Tpan_mathkit.Q
module FM = Tpan_mathkit.Fourier_motzkin
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module Rng = Tpan_sim.Rng

type point = (string * Q.t) list

let vars tpn =
  let net = Tpn.net tpn in
  let acc = ref [] in
  let push v = if not (List.exists (Var.equal v) !acc) then acc := v :: !acc in
  List.iter
    (fun t ->
      (match Tpn.enabling tpn t with Tpn.Sym v -> push v | Tpn.Fixed _ -> ());
      (match Tpn.firing tpn t with Tpn.Sym v -> push v | Tpn.Fixed _ -> ());
      match Tpn.frequency tpn t with Tpn.Freq_sym v -> push v | Tpn.Freq _ -> ())
    (Tpan_petri.Net.transitions net);
  List.rev !acc

(* The constraint system as FM constraints, with the non-negativity of
   every time symbol baked in (mirrors Oracle's preprocessing). *)
let fm_system tpn =
  let entries = C.constraints (Tpn.constraints tpn) in
  let of_rel rel lhs rhs =
    let a = Lin.to_form lhs and b = Lin.to_form rhs in
    match rel with
    | `Ge -> FM.ge a b
    | `Gt -> FM.gt a b
    | `Le -> FM.ge b a
    | `Lt -> FM.gt b a
    | `Eq -> FM.eq a b
  in
  let base = List.map (fun (_, rel, lhs, rhs) -> of_rel rel lhs rhs) entries in
  let nonneg =
    List.filter_map
      (fun v ->
        if Var.is_time v then Some (FM.ge (FM.Linform.var (Var.id v)) FM.Linform.zero)
        else None)
      (vars tpn)
  in
  nonneg @ base

let base_point tpn =
  let system = fm_system tpn in
  (* Prefer a strict-interior model: strictly positive delays keep the
     simulation free of zero-delay (Zeno) cycles and maximize the room
     for perturbation. Equalities must stay equalities. *)
  let strict =
    List.map
      (fun (c : FM.constr) ->
        match c.FM.rel with FM.Ge -> { c with FM.rel = FM.Gt } | FM.Gt | FM.Eq -> c)
      system
  in
  let model =
    match FM.find_model strict with Some m -> Some m | None -> FM.find_model system
  in
  match model with
  | None -> None
  | Some bindings ->
    let value v =
      match List.assoc_opt (Var.id v) bindings with
      | Some q -> q
      | None -> Q.one (* unconstrained symbol: any positive value is a model *)
    in
    Some (List.map (fun v -> (Var.name v, value v)) (vars tpn))

(* Random positive rational with small numerator/denominator: keeps the
   exact arithmetic of the downstream TRG build cheap. *)
let small_q rng ~lo ~hi =
  let den = 1 + Rng.int rng 4 in
  let lo_n = lo * den and hi_n = hi * den in
  Q.of_ints (lo_n + Rng.int rng (max 1 (hi_n - lo_n))) den

(* Variables tied by a pure [x = y] constraint must move together:
   perturbing them independently would reject every proposal. Union-find
   over display names, seeded from the [`Eq] entries whose two sides are
   single unit-coefficient variables. *)
let eq_repr tpn =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  List.iter
    (fun (_, rel, lhs, rhs) ->
      match rel with
      | `Eq -> (
        match (Lin.terms lhs, Lin.terms rhs) with
        | [ (a, ca) ], [ (b, cb) ]
          when Q.equal ca Q.one && Q.equal cb Q.one
               && Q.is_zero (Lin.constant lhs)
               && Q.is_zero (Lin.constant rhs) ->
          let ra = find (Var.name a) and rb = find (Var.name b) in
          if ra <> rb then Hashtbl.replace parent ra rb
        | _ -> ())
      | _ -> ())
    (C.constraints (Tpn.constraints tpn));
  find

let satisfies tpn pt =
  let env v = match List.assoc_opt (Var.name v) pt with Some q -> q | None -> Q.one in
  C.satisfies env (Tpn.constraints tpn)
  && List.for_all (fun (_, q) -> Q.sign q > 0 || Q.is_zero q) pt

let sample ~rng tpn =
  match base_point tpn with
  | None -> None
  | Some base ->
    let syms = vars tpn in
    let repr = eq_repr tpn in
    let satisfies pt = satisfies tpn pt in
    (* Multiplicative perturbation, shrinking toward the base point on
       rejection: factor_k = 1 + (factor - 1)/2^k. Frequencies are
       resampled outright — they are almost never range-constrained, and
       wide spreads exercise the branching probabilities. Eq-tied
       variables draw from a shared per-class cache (their base values
       already agree, so a shared factor preserves the equality). *)
    let propose shrink =
      let cache = Hashtbl.create 8 in
      let per_class name gen =
        let key = repr name in
        match Hashtbl.find_opt cache key with
        | Some q -> q
        | None ->
          let q = gen () in
          Hashtbl.add cache key q;
          q
      in
      List.map2
        (fun v (name, q) ->
          match Var.kind v with
          | Var.Frequency -> (name, per_class name (fun () -> small_q rng ~lo:1 ~hi:12))
          | Var.Enabling | Var.Firing | Var.Param ->
            let factor =
              per_class name (fun () ->
                  let f = small_q rng ~lo:1 ~hi:6 in
                  (* spread factors below 1 too: half the draws divide *)
                  let f = if Rng.int rng 2 = 0 then Q.inv f else f in
                  (* shrink the log-scale distance to 1 by halving [shrink] times *)
                  let rec damp k f =
                    if k = 0 then f else damp (k - 1) (Q.div (Q.add f Q.one) (Q.of_int 2))
                  in
                  damp shrink f)
            in
            (name, Q.mul q factor))
        syms base
    in
    let rec attempt k =
      if k > 6 then base
      else
        let pt = propose k in
        if satisfies pt then pt else attempt (k + 1)
    in
    Some (attempt 0)
