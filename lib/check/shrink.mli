(** Greedy minimization of a failing (net, point) pair, and rendering the
    result as a reproducer the DSL parser accepts.

    The shrinker knows nothing about {e why} the pair fails: the caller
    supplies [still_fails], and every candidate that keeps failing (and
    still satisfies the candidate net's constraint system) is accepted.
    Two passes run to a fixpoint: a structure pass that drops one
    transition at a time (then prunes places left without arcs), and a
    point pass that rounds each binding to 1 or to a small integer. *)

module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn

val drop_transition : Tpn.t -> string -> Tpn.t option
(** The net without the named transition; constraints mentioning symbols
    that no longer occur are dropped. [None] when the transition does not
    exist or the reduced net is rejected by {!Tpan_core.Tpn.make}. *)

val minimize :
  ?structure:bool ->
  still_fails:(Tpn.t -> Sampler.point -> bool) ->
  Tpn.t ->
  Sampler.point ->
  Tpn.t * Sampler.point
(** Greedy fixpoint of both passes. [structure:false] (default [true])
    keeps the net fixed and only shrinks the point — needed when the
    failure is pinned to an externally supplied expression whose symbols
    must keep existing. *)

val reproducer : Tpn.t -> Sampler.point -> string
(** A [.tpn] snippet: the point bound into the net (so every time and
    frequency is a literal) preceded by comment lines recording the
    binding. Parses back through {!Tpan_dsl.Parser.parse_string}. *)
