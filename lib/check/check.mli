(** Three-way differential checking of the analysis pipeline.

    For a net and a delivery transition, three independent computations of
    the long-run throughput must agree:

    - {b exact}: the closed-form symbolic expression
      ({!Tpan_perf.Measures.Symbolic.throughput}) evaluated at a rational
      point of the constraint region (for concrete nets, the exact
      ℚ rate-equation solution);
    - {b numeric}: the concrete TRG at the same point, collapsed to a
      decision graph and solved by floating-point power iteration
      ({!Tpan_perf.Markov.throughput});
    - {b simulation}: Monte-Carlo replications
      ({!Tpan_sim.Simulator.run_many}) with a 95% confidence interval.

    Disagreement — exact vs numeric beyond a relative tolerance, or exact
    outside the (widened) simulation interval — is a bug in one of the
    three implementations. The checker reports it with a greedy-shrunk
    reproducer ({!Shrink}), and {!fuzz} drives the whole pipeline over
    {!Gen} random nets. *)

module Q = Tpan_mathkit.Q
module Tpn = Tpan_core.Tpn

type config = {
  samples : int;  (** constraint-region points per symbolic net *)
  seed : int;
  runs : int;  (** simulation replications per point *)
  horizon_cycles : int;
      (** simulated span per replication, in expected delivery periods *)
  max_states : int option;
  rel_tol : float;  (** exact vs numeric relative tolerance *)
  ci_sigma : float;
      (** half-width of the acceptance interval, in standard errors *)
  sim_slack : float;
      (** extra relative slack on the interval, absorbing the finite-
          horizon truncation bias the CI does not model; the interval
          additionally gets a [2/sqrt(horizon_cycles * runs)] relative
          floor, the genuine Monte-Carlo noise scale even when few
          replications make the estimated standard error unreliable *)
  shrink : bool;  (** minimize failures and render reproducers *)
  deadline : float option;
      (** per-case wall budget, seconds. In {!fuzz}, a case that
          exceeds it aborts at its next cancellation checkpoint and is
          recorded as [Error (Deadline_exceeded _)] instead of hanging
          the run; other cases proceed. [None] (the default) = no
          budget. *)
}

val default : config
(** 5 samples, 6 runs, 80-cycle horizon, [rel_tol = 1e-9],
    [ci_sigma = 4.5], [sim_slack = 0.04], shrinking on. *)

val quick : config -> config
(** The same checks at reduced cost (fewer samples, runs, cycles). *)

type disagreement =
  | Exact_vs_numeric of { exact : float; numeric : float; rel_err : float }
  | Exact_vs_sim of { exact : float; mean : float; lo : float; hi : float }

type triple = {
  point : Sampler.point;
  exact : Q.t;
  numeric : float;
  sim : Tpan_sim.Simulator.estimate;
}

type failure = {
  disagreement : disagreement;
  triple : triple;
  reproducer : string;  (** {!Shrink.reproducer} of the minimized pair *)
}

type outcome = {
  name : string;
  points : int;  (** triples actually evaluated *)
  agreed : int;
  failures : failure list;
  skipped : (string * string) list;  (** (point label, reason) *)
}

val ok : outcome -> bool
(** No failures (skipped points do not fail a check). *)

val check_tpn :
  ?config:config ->
  ?expr:Tpan_symbolic.Ratfun.t ->
  name:string ->
  delivery:string ->
  Tpn.t ->
  (outcome, Tpan_core.Error.t) result
(** Run the three-way check. [expr] overrides the symbolic throughput
    expression (the hook for bug-injection tests: pass a deliberately
    wrong expression and the checker must flag it); when given, shrinking
    keeps the net structure and only minimizes the point. *)

val check_case :
  ?config:config -> Gen.case -> (outcome, Tpan_core.Error.t) result

val fuzz :
  ?config:config ->
  ?jobs:int ->
  cases:int ->
  unit ->
  (Gen.case * (outcome, Tpan_core.Error.t) result) list
(** [cases] generated nets, seeds [config.seed .. config.seed+cases-1],
    fanned out over a {!Tpan_par.Pool} (deterministic for any [jobs]). *)

val outcome_to_json : outcome -> Tpan_obs.Jsonv.t
val pp_outcome : Format.formatter -> outcome -> unit
