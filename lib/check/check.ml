module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module Sem = Tpan_core.Semantics
module Error = Tpan_core.Error
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module Markov = Tpan_perf.Markov
module Rf = Tpan_symbolic.Ratfun
module Sim = Tpan_sim.Simulator
module Rng = Tpan_sim.Rng
module J = Tpan_obs.Jsonv

type config = {
  samples : int;
  seed : int;
  runs : int;
  horizon_cycles : int;
  max_states : int option;
  rel_tol : float;
  ci_sigma : float;
  sim_slack : float;
  shrink : bool;
  deadline : float option;
}

let default =
  {
    samples = 5;
    seed = 1;
    runs = 6;
    horizon_cycles = 80;
    max_states = None;
    rel_tol = 1e-9;
    ci_sigma = 4.5;
    sim_slack = 0.04;
    shrink = true;
    deadline = None;
  }

let quick cfg =
  { cfg with samples = min cfg.samples 3; runs = min cfg.runs 4; horizon_cycles = min cfg.horizon_cycles 40 }

type disagreement =
  | Exact_vs_numeric of { exact : float; numeric : float; rel_err : float }
  | Exact_vs_sim of { exact : float; mean : float; lo : float; hi : float }

type triple = {
  point : Sampler.point;
  exact : Q.t;
  numeric : float;
  sim : Sim.estimate;
}

type failure = { disagreement : disagreement; triple : triple; reproducer : string }

type outcome = {
  name : string;
  points : int;
  agreed : int;
  failures : failure list;
  skipped : (string * string) list;
}

let ok o = o.failures = []

let m_points = Tpan_obs.Metrics.counter "tpan_check_points_total"
let m_disagreements = Tpan_obs.Metrics.counter "tpan_check_disagreements_total"
let m_skipped = Tpan_obs.Metrics.counter "tpan_check_skipped_points_total"

(* lib/check sits below the facade, so the perf-layer exceptions are
   classified here rather than through [Tpan.Error.of_exn]. *)
let classify_exn = function
  | e when Error.of_exn e <> None -> Option.get (Error.of_exn e)
  | Rates.Unsolvable msg -> Error.Unsolvable msg
  | DG.Deterministic_cycle c -> Error.Deterministic_cycle c
  | Division_by_zero -> Error.Unsupported "division by zero during evaluation"
  | e -> raise e

let describe_exn = function
  | e when Error.of_exn e <> None ->
    Error.to_string (Option.get (Error.of_exn e))
  | Rates.Unsolvable msg -> "rate equations unsolvable: " ^ msg
  | DG.Deterministic_cycle _ -> "deterministic cycle: no decision nodes on the walk"
  | Division_by_zero -> "division by zero during evaluation"
  | Failure msg -> msg
  | Not_found -> "unknown transition or unbound variable"
  | e -> Printexc.to_string e

(* One evaluation of all three legs at a point. [expr] is the symbolic
   closed form when the net is symbolic (or an injected override);
   concrete nets take their exact value from the ℚ rate solution. *)
let eval_triple cfg ~expr ~delivery ~sim_seed tpn point =
  try
    let bound = if point = [] then tpn else Tpn.bind_times tpn point in
    let g = CG.build ?max_states:cfg.max_states bound in
    let res = M.Concrete.analyze g in
    let exact =
      match expr with
      | Some e -> M.Symbolic.eval_at e point
      | None -> M.Concrete.throughput res g delivery
    in
    let t = Net.trans_of_name (Tpn.net bound) delivery in
    let numeric =
      Markov.throughput
        ~probs:(fun e -> Q.to_float e.DG.prob)
        ~delays:(fun e -> Q.to_float e.DG.delay)
        res.Rates.dg
        ~count:(fun e -> List.length (List.filter (( = ) t) e.DG.completed))
    in
    (* Scale the simulated span to the expected delivery period, so every
       point sees the same number of regeneration cycles regardless of how
       the sampler stretched the delays. *)
    let exact_f = Q.to_float exact in
    let period = if exact_f > 0. then 1. /. exact_f else 1000. in
    let horizon = Q.of_int (max 1 (int_of_float (ceil (float_of_int cfg.horizon_cycles *. period)))) in
    let warmup = Q.of_int (max 1 (int_of_float (ceil (8. *. period)))) in
    let sim =
      Sim.run_many ~seed:sim_seed ~warmup ~runs:cfg.runs ~horizon bound (fun s ->
          Sim.throughput s t)
    in
    Ok { point; exact; numeric; sim }
  with
  | Tpan_obs.Cancel.Cancelled _ as e ->
    (* a cancelled case is not a skipped point: let the fuzz wrapper
       (or the CLI) turn it into Deadline_exceeded *)
    raise e
  | e -> Result.error (describe_exn e)

let disagreement cfg t =
  let exact = Q.to_float t.exact in
  let scale = Float.max (Float.abs exact) 1e-300 in
  let rel_err = Float.abs (exact -. t.numeric) /. scale in
  if rel_err > cfg.rel_tol then Some (Exact_vs_numeric { exact; numeric = t.numeric; rel_err })
  else
    (* The estimated standard error is unreliable at small replication
       counts (2 runs that both land low produce a tiny s.e. and a false
       alarm), so the interval also gets a floor of 2/sqrt(N) relative,
       N being the expected delivery count over all replications — the
       scale of genuine Monte-Carlo noise regardless of how well the
       per-run spread was estimated. *)
    let n_est = float_of_int (max 1 (cfg.horizon_cycles * cfg.runs)) in
    let stat_floor = 2.0 *. scale /. Float.sqrt n_est in
    let slack =
      (cfg.ci_sigma *. t.sim.Sim.std_error) +. (cfg.sim_slack *. scale) +. stat_floor
    in
    let lo = t.sim.Sim.mean -. slack and hi = t.sim.Sim.mean +. slack in
    if exact < lo || exact > hi then
      Some (Exact_vs_sim { exact; mean = t.sim.Sim.mean; lo; hi })
    else None

(* The shrinker's oracle: does the candidate (net, point) still produce
   some disagreement? With an injected [expr] the expression's symbols
   must survive, so the net structure is pinned and only the point
   shrinks; otherwise each candidate net gets a fresh symbolic analysis. *)
let still_fails cfg ?expr ~delivery () tpn point =
  let expr =
    match expr with
    | Some _ -> expr
    | None ->
      if Tpn.is_concrete tpn then None
      else (
        try
          let sg = SG.build ?max_states:cfg.max_states tpn in
          let sres = M.Symbolic.analyze sg in
          Some (M.Symbolic.throughput sres sg delivery)
        with
        | Tpan_obs.Cancel.Cancelled _ as e -> raise e
        | _ -> raise Exit)
  in
  match eval_triple cfg ~expr ~delivery ~sim_seed:cfg.seed tpn point with
  | Ok t -> disagreement cfg t <> None
  | Error _ -> false

let still_fails cfg ?expr ~delivery () tpn point =
  try still_fails cfg ?expr ~delivery () tpn point with Exit -> false

let check_tpn ?(config = default) ?expr ~name ~delivery tpn =
  let symbolic = not (Tpn.is_concrete tpn) in
  match
    match expr with
    | Some e -> Ok (Some e)
    | None ->
      if not symbolic then Ok None
      else (
        try
          let sg = SG.build ?max_states:config.max_states tpn in
          let sres = M.Symbolic.analyze sg in
          Ok (Some (M.Symbolic.throughput sres sg delivery))
        with e -> Result.error (classify_exn e))
  with
  | Error e -> Result.error e
  | Ok expr_opt -> (
    let structure_pinned = expr <> None in
    let rng = Rng.create ~seed:config.seed in
    let seed_rng = Rng.create ~seed:(config.seed + 0x9e37) in
    let points =
      if symbolic then
        List.init config.samples (fun i ->
            (Printf.sprintf "p%d" i, Sampler.sample ~rng tpn, 1 + Rng.int seed_rng 0x3fffffff))
      else [ ("p0", Some [], 1 + Rng.int seed_rng 0x3fffffff) ]
    in
    match List.exists (fun (_, p, _) -> p = None) points with
    | true -> Result.error (Error.Invalid_input "constraint system has no model")
    | false ->
      let agreed = ref 0 and failures = ref [] and skipped = ref [] in
      List.iter
        (fun (label, point, sim_seed) ->
          let point = Option.get point in
          Tpan_obs.Metrics.Counter.incr m_points;
          match eval_triple config ~expr:expr_opt ~delivery ~sim_seed tpn point with
          | Error reason ->
            Tpan_obs.Metrics.Counter.incr m_skipped;
            skipped := (label, reason) :: !skipped
          | Ok t -> (
            match disagreement config t with
            | None -> incr agreed
            | Some d ->
              Tpan_obs.Metrics.Counter.incr m_disagreements;
              let reproducer =
                if not config.shrink then Shrink.reproducer tpn point
                else
                  let tpn', point' =
                    Shrink.minimize ~structure:(not structure_pinned)
                      ~still_fails:(still_fails config ?expr ~delivery ())
                      tpn point
                  in
                  Shrink.reproducer tpn' point'
              in
              failures := { disagreement = d; triple = t; reproducer } :: !failures))
        points;
      Ok
        {
          name;
          points = List.length points;
          agreed = !agreed;
          failures = List.rev !failures;
          skipped = List.rev !skipped;
        })

let check_case ?config (c : Gen.case) =
  check_tpn ?config ~name:(Printf.sprintf "gen%d" c.Gen.seed) ~delivery:c.Gen.delivery
    c.Gen.tpn

let fuzz ?(config = default) ?jobs ~cases () =
  List.init cases (fun i -> config.seed + i)
  |> Tpan_par.Pool.map ?jobs (fun seed ->
         let c = Gen.case ~seed in
         let run () = check_case ~config:{ config with seed } c in
         let result =
           match config.deadline with
           | None -> run ()
           | Some budget -> (
             (* per-case budget: a pathological generated net aborts and
                is recorded, instead of hanging the whole fuzz run. The
                case context keeps the surrounding trace id so its dump
                and ledger rows stay correlated with the run. *)
             let ctx =
               Tpan_obs.Context.make
                 ?trace_id:(Tpan_obs.Context.trace_id ())
                 ~deadline:budget ()
             in
             try Tpan_obs.Context.with_ctx ctx run
             with Tpan_obs.Cancel.Cancelled reason ->
               Result.error
                 (Error.Deadline_exceeded
                    (Tpan_obs.Cancel.reason_to_string reason)))
         in
         (c, result))

(* renderers *)

let pp_float fmt f = Format.fprintf fmt "%.9g" f

let pp_disagreement fmt = function
  | Exact_vs_numeric { exact; numeric; rel_err } ->
    Format.fprintf fmt "exact %a vs numeric %a (rel err %.2e)" pp_float exact pp_float
      numeric rel_err
  | Exact_vs_sim { exact; mean; lo; hi } ->
    Format.fprintf fmt "exact %a outside sim interval [%a, %a] (mean %a)" pp_float exact
      pp_float lo pp_float hi pp_float mean

let pp_point fmt point =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
    (fun fmt (n, q) -> Format.fprintf fmt "%s=%s" n (Q.to_string q))
    fmt point

let pp_outcome fmt o =
  Format.fprintf fmt "@[<v>%s: %d/%d points agree (exact = numeric = sim)" o.name o.agreed
    o.points;
  List.iter
    (fun (label, reason) -> Format.fprintf fmt "@,  %s skipped: %s" label reason)
    o.skipped;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,  DISAGREEMENT %a@,  at %a@,  reproducer:@,@[<v 2>  %a@]"
        pp_disagreement f.disagreement pp_point f.triple.point
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
        (String.split_on_char '\n' f.reproducer))
    o.failures;
  Format.fprintf fmt "@]"

let estimate_to_json (e : Sim.estimate) =
  let lo, hi = e.Sim.ci95 in
  J.Obj
    [
      ("mean", J.Float e.Sim.mean);
      ("std_error", J.Float e.Sim.std_error);
      ("ci95_lo", J.Float lo);
      ("ci95_hi", J.Float hi);
      ("runs", J.Int e.Sim.runs);
    ]

let disagreement_to_json = function
  | Exact_vs_numeric { exact; numeric; rel_err } ->
    J.Obj
      [
        ("kind", J.Str "exact_vs_numeric");
        ("exact", J.Float exact);
        ("numeric", J.Float numeric);
        ("rel_err", J.Float rel_err);
      ]
  | Exact_vs_sim { exact; mean; lo; hi } ->
    J.Obj
      [
        ("kind", J.Str "exact_vs_sim");
        ("exact", J.Float exact);
        ("mean", J.Float mean);
        ("lo", J.Float lo);
        ("hi", J.Float hi);
      ]

let outcome_to_json o =
  J.Obj
    [
      ("schema", J.Int 1);
      ("kind", J.Str "check");
      ("name", J.Str o.name);
      ("points", J.Int o.points);
      ("agreed", J.Int o.agreed);
      ( "failures",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("disagreement", disagreement_to_json f.disagreement);
                   ( "point",
                     J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) f.triple.point)
                   );
                   ("exact", J.Str (Q.to_string f.triple.exact));
                   ("numeric", J.Float f.triple.numeric);
                   ("sim", estimate_to_json f.triple.sim);
                   ("reproducer", J.Str f.reproducer);
                 ])
             o.failures) );
      ( "skipped",
        J.List
          (List.map
             (fun (label, reason) ->
               J.Obj [ ("point", J.Str label); ("reason", J.Str reason) ])
             o.skipped) );
      ("ok", J.Bool (ok o));
    ]
