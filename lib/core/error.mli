(** Unified error values for the analysis pipeline.

    Every failure mode the pipeline can hit — unsupported net features,
    truncated exploration, unsolvable rate equations, parse errors — has a
    variant here, so [result]-typed entry points ([Reachability.explore_result],
    [Exponential.build_result], [Tpan.Analysis.*], …) share one error type
    and the CLI maps them all onto stable exit codes in one place.

    Layering: this module lives in [tpan_core], below [tpan_perf] and
    [tpan_dsl], so {!of_exn} only classifies the exceptions core can see
    ([Tpn.Unsupported], [Symbolic.Insufficient], [Reachability.State_limit],
    [Sys_error]). The facade's [Tpan.Error.of_exn] extends the match to
    perf- and parser-level exceptions. *)

type t =
  | Unsupported of string
      (** The net uses a feature outside the analyzable class (e.g. a
          non-conflict-free concrete TPN for decision-graph collapse). *)
  | Insufficient of { lhs : string; rhs : string; hint : string }
      (** Symbolic exploration could not order two clock expressions;
          [lhs]/[rhs] are rendered linear expressions. *)
  | State_limit of int
      (** Exploration truncated at the given state budget. *)
  | Unsolvable of string
      (** The traversal-rate equations have no unique solution. *)
  | Deterministic_cycle of int list
      (** Decision-graph collapse found the system deterministic from some
          node on; the cycle analysis applies instead. *)
  | Parse_error of { line : int; col : int; msg : string }
  | Io_error of string
  | Invalid_input of string
      (** A malformed request (bad parameter name, bad grid spec, …). *)
  | Deadline_exceeded of string
      (** The analysis was cancelled mid-flight — deadline crossed,
          stall, or signal; the payload is the rendered
          {!Tpan_obs.Cancel.reason}. *)

val to_string : t -> string
(** One-line human rendering, matching the CLI's historical wording. *)

val exit_code : t -> int
(** Stable process exit code: 2 for input-side errors ([Unsupported],
    [Parse_error], [Io_error], [Invalid_input]), 3 for [Insufficient],
    4 for [Unsolvable] and [Deterministic_cycle], 5 for [State_limit],
    6 for [Deadline_exceeded]. *)

val of_exn : exn -> t option
(** Classify the core-visible analysis exceptions; [None] for anything
    this layer doesn't know (perf/parser exceptions — see
    [Tpan.Error.of_exn] — and genuine bugs). *)

val pp : Format.formatter -> t -> unit
