module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module C = Tpan_symbolic.Constraints
module O = Tpan_symbolic.Oracle

exception Insufficient of { lhs : Lin.t; rhs : Lin.t; hint : string }

module Domain = struct
  type time = Lin.t
  type prob = Rf.t

  let enabling_time tpn t = Tpn.enabling_expr tpn t
  let firing_time tpn t = Tpn.firing_expr tpn t
  let zero = Lin.zero
  let is_zero e = Lin.equal e Lin.zero
  let add = Lin.add
  let sub = Lin.sub

  let normalize tpn e =
    if Lin.is_const e then e
    else if O.entails (Tpn.oracle tpn) `Eq e Lin.zero then Lin.zero
    else e

  let compare_time tpn a b =
    if Lin.equal a b then `Eq
    else
      match O.compare_exprs (Tpn.oracle tpn) a b with
      | C.Lt -> `Lt
      | C.Eq -> `Eq
      | C.Gt -> `Gt
      | C.Unknown ->
        raise (Insufficient { lhs = a; rhs = b; hint = C.suggest a b })

  let justify tpn ~smaller ~larger =
    if Lin.equal smaller larger then []
    else
      match C.justify (Tpn.constraints tpn) `Le smaller larger with
      | Some labels -> labels
      | None -> []

  let time_equal = Lin.equal
  let time_hash = Lin.hash
  let pp_time = Lin.pp

  let prob_one = Rf.one
  let prob_mul = Rf.mul

  let prob_of_choice tpn ~chosen ~among =
    match among with
    | [ _ ] -> Rf.one
    | _ ->
      let total =
        List.fold_left (fun acc t -> Poly.add acc (Tpn.frequency_poly tpn t)) Poly.zero among
      in
      Rf.make (Tpn.frequency_poly tpn chosen) total

  let prob_equal = Rf.equal
  let pp_prob = Rf.pp
end

module Graph = Semantics.Make (Domain)

let build ?max_states ?on_progress tpn =
  Tpan_obs.Trace.with_span "symbolic.build" @@ fun sp ->
  let g = Graph.build ?max_states ?on_progress tpn in
  Tpan_obs.Trace.add_attr_int sp "states" (Graph.num_states g);
  Tpan_obs.Trace.add_attr_int sp "edges" (Graph.num_edges g);
  g

let total_delay edges =
  List.fold_left (fun acc (e : Graph.edge) -> Lin.add acc e.delay) Lin.zero edges

let constraint_audit (g : Graph.graph) =
  let acc = ref [] in
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : Graph.edge) ->
          if e.justification <> [] then acc := (e.src, e.dst, e.justification) :: !acc)
        edges)
    g.out;
  List.rev !acc

let to_dot (g : Graph.graph) =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escape s =
    String.concat ""
      (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  pr "digraph \"%s symbolic TRG\" {\n" (escape (Net.name (Tpn.net g.tpn)));
  Array.iteri
    (fun i st ->
      let shape =
        match g.kinds.(i) with
        | Semantics.Decision -> "diamond"
        | Semantics.Advance -> "ellipse"
        | Semantics.Terminal -> "doublecircle"
      in
      let label = Format.asprintf "%d: %a" (i + 1) (Graph.pp_state g.tpn) st in
      pr "  s%d [shape=%s, label=\"%s\"];\n" i shape (escape label))
    g.states;
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : Graph.edge) ->
          let label =
            if Rf.equal e.prob Rf.one then Format.asprintf "%a" Lin.pp e.delay
            else Format.asprintf "%a (p=%a)" Lin.pp e.delay Rf.pp e.prob
          in
          pr "  s%d -> s%d [label=\"%s\"];\n" e.src e.dst (escape label))
        edges)
    g.out;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
