module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Constraints = Tpan_symbolic.Constraints

type time_spec = Fixed of Q.t | Sym of Var.t
type freq_spec = Freq of Q.t | Freq_sym of Var.t

type spec = { enabling : time_spec; firing : time_spec; frequency : freq_spec }

let spec ?(enabling = Fixed Q.zero) ?(firing = Fixed Q.zero) ?(frequency = Freq Q.one) () =
  { enabling; firing; frequency }

let fixed q = Fixed q
let fixed_ms s = Fixed (Q.of_decimal_string s)
let sym_enabling label = Sym (Var.enabling label)
let sym_firing label = Sym (Var.firing label)

type t = {
  net : Net.t;
  specs : spec array;
  constraints : Constraints.t;
  oracle : Tpan_symbolic.Oracle.t Lazy.t;
      (* built once per constraint system; all symbolic ordering queries go
         through it (preprocessing + witness filter + memoized verdicts) *)
  cs_of : int array; (* transition -> conflict-set id *)
  css : Net.trans list array; (* conflict-set id -> members *)
}

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* Conflict sets = connected components of the structural conflict relation.
   The paper requires a partition into *disjoint* sets with every pair of
   structurally conflicting transitions in the same set; the finest such
   partition is the transitive closure of the relation. *)
let compute_conflict_sets net =
  let nt = Net.num_transitions net in
  let parent = Array.init nt Fun.id in
  let rec find i = if parent.(i) = i then i else begin parent.(i) <- find parent.(i); parent.(i) end in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter
    (fun p ->
      match Net.consumers net p with
      | [] -> ()
      | first :: rest -> List.iter (fun t -> union first t) rest)
    (Net.places net);
  let ids = Hashtbl.create 16 in
  let cs_of = Array.make nt 0 in
  let next = ref 0 in
  for t = 0 to nt - 1 do
    let r = find t in
    let id =
      match Hashtbl.find_opt ids r with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        Hashtbl.add ids r id;
        id
    in
    cs_of.(t) <- id
  done;
  let css = Array.make !next [] in
  for t = nt - 1 downto 0 do
    css.(cs_of.(t)) <- t :: css.(cs_of.(t))
  done;
  (cs_of, css)

let check_time_spec name what = function
  | Fixed q -> if Q.sign q < 0 then unsupported "%s of %s is negative" what name
  | Sym _ -> ()

let make ?(constraints = Constraints.empty) ?(conflict_sets = []) net specs_alist =
  let nt = Net.num_transitions net in
  let specs = Array.make nt (spec ()) in
  let seen = Array.make nt false in
  List.iter
    (fun (name, s) ->
      let t =
        try Net.trans_of_name net name
        with Not_found -> invalid_arg (Printf.sprintf "Tpn.make: unknown transition %S" name)
      in
      if seen.(t) then invalid_arg (Printf.sprintf "Tpn.make: duplicate spec for %S" name);
      seen.(t) <- true;
      check_time_spec name "enabling time" s.enabling;
      check_time_spec name "firing time" s.firing;
      (match s.frequency with
       | Freq q -> if Q.sign q < 0 then unsupported "frequency of %s is negative" name
       | Freq_sym _ -> ());
      specs.(t) <- s)
    specs_alist;
  Array.iteri
    (fun t b ->
      if not b then
        invalid_arg (Printf.sprintf "Tpn.make: missing spec for transition %S" (Net.trans_name net t)))
    seen;
  let cs_of, css = compute_conflict_sets net in
  (* Optional frequency override blocks: validate against the structural
     partition, then rewrite frequencies. *)
  List.iter
    (fun (names, freqs) ->
      if List.length names <> List.length freqs then
        invalid_arg "Tpn.make: conflict set names/frequencies length mismatch";
      let ts = List.map (Net.trans_of_name net) names in
      (match ts with
       | [] -> invalid_arg "Tpn.make: empty conflict set"
       | t0 :: rest ->
         List.iter
           (fun t ->
             if cs_of.(t) <> cs_of.(t0) then
               unsupported
                 "declared conflict set {%s} does not match the structural partition"
                 (String.concat ", " names))
           rest);
      List.iter2
        (fun t f ->
          if Q.sign f < 0 then unsupported "frequency of %s is negative" (Net.trans_name net t);
          specs.(t) <- { (specs.(t)) with frequency = Freq f })
        ts freqs)
    conflict_sets;
  { net; specs; constraints; oracle = lazy (Tpan_symbolic.Oracle.make constraints); cs_of; css }

let net g = g.net
let constraints g = g.constraints
let oracle g = Lazy.force g.oracle
let enabling g t = g.specs.(t).enabling
let firing g t = g.specs.(t).firing
let frequency g t = g.specs.(t).frequency

let time_expr = function Fixed q -> Lin.const q | Sym v -> Lin.var v

let enabling_expr g t = time_expr g.specs.(t).enabling
let firing_expr g t = time_expr g.specs.(t).firing

let time_q g what t = function
  | Fixed q -> q
  | Sym v ->
    unsupported "%s of %s is symbolic (%s); use the symbolic analysis" what
      (Net.trans_name g.net t) (Var.name v)

let enabling_q g t = time_q g "enabling time" t g.specs.(t).enabling
let firing_q g t = time_q g "firing time" t g.specs.(t).firing

let frequency_q g t =
  match g.specs.(t).frequency with
  | Freq q -> q
  | Freq_sym v ->
    unsupported "frequency of %s is symbolic (%s); use the symbolic analysis"
      (Net.trans_name g.net t) (Var.name v)

let frequency_poly g t =
  match g.specs.(t).frequency with
  | Freq q -> Poly.const q
  | Freq_sym v -> Poly.var v

let is_zero_frequency g t =
  match g.specs.(t).frequency with Freq q -> Q.is_zero q | Freq_sym _ -> false

let is_concrete g =
  Array.for_all
    (fun s ->
      (match s.enabling with Fixed _ -> true | Sym _ -> false)
      && (match s.firing with Fixed _ -> true | Sym _ -> false)
      && match s.frequency with Freq _ -> true | Freq_sym _ -> false)
    g.specs

let conflict_set_of g t = g.cs_of.(t)
let conflict_sets g = Array.map Fun.id g.css

let time_vars g =
  let acc = ref [] in
  Array.iter
    (fun s ->
      (match s.enabling with Sym v -> acc := v :: !acc | Fixed _ -> ());
      match s.firing with Sym v -> acc := v :: !acc | Fixed _ -> ())
    g.specs;
  List.rev !acc

let bind_times g bindings =
  let lookup name = List.assoc_opt name bindings in
  let bind_time = function
    | Fixed q -> Fixed q
    | Sym v -> (match lookup (Var.name v) with Some q -> Fixed q | None -> Sym v)
  in
  let bind_freq = function
    | Freq q -> Freq q
    | Freq_sym v -> (match lookup (Var.name v) with Some q -> Freq q | None -> Freq_sym v)
  in
  let specs =
    Array.map
      (fun s -> { enabling = bind_time s.enabling; firing = bind_time s.firing; frequency = bind_freq s.frequency })
      g.specs
  in
  let g' = { g with specs } in
  (* When fully concrete, the binding must be a model of the constraints. *)
  if is_concrete g' then begin
    let env v =
      match lookup (Var.name v) with
      | Some q -> q
      | None -> unsupported "bind_times: no value given for %s" (Var.name v)
    in
    if not (Constraints.satisfies env g.constraints) then
      unsupported "bind_times: the binding violates the declared timing constraints"
  end;
  g'

let pp_time_spec fmt = function
  | Fixed q -> Q.pp_decimal fmt q
  | Sym v -> Var.pp fmt v

let pp fmt g =
  Format.fprintf fmt "@[<v>timed net %s@," (Net.name g.net);
  Array.iteri
    (fun t s ->
      Format.fprintf fmt "  %-12s E=%a F=%a f=%s (cs %d)@," (Net.trans_name g.net t)
        pp_time_spec s.enabling pp_time_spec s.firing
        (match s.frequency with
         | Freq q -> Format.asprintf "%a" (Q.pp_decimal ~digits:6) q
         | Freq_sym v -> Var.name v)
        g.cs_of.(t))
    g.specs;
  let ncs = Array.length g.css in
  Format.fprintf fmt "  %d conflict set(s)" ncs;
  Format.fprintf fmt "@]"
