module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net

module Domain = struct
  type time = Q.t
  type prob = Q.t

  let enabling_time tpn t = Tpn.enabling_q tpn t
  let firing_time tpn t = Tpn.firing_q tpn t
  let zero = Q.zero
  let is_zero = Q.is_zero
  let add = Q.add
  let sub = Q.sub
  let normalize _ q = q

  let compare_time _ a b =
    let c = Q.compare a b in
    if c < 0 then `Lt else if c > 0 then `Gt else `Eq

  let justify _ ~smaller:_ ~larger:_ = []
  let time_equal = Q.equal
  let time_hash = Q.hash
  let pp_time = Q.pp_decimal ~digits:6

  let prob_one = Q.one
  let prob_mul = Q.mul

  let prob_of_choice tpn ~chosen ~among =
    match among with
    | [ _ ] -> Q.one
    | _ ->
      let total = List.fold_left (fun acc t -> Q.add acc (Tpn.frequency_q tpn t)) Q.zero among in
      Q.div (Tpn.frequency_q tpn chosen) total

  let prob_equal = Q.equal
  let pp_prob = Q.pp_decimal ~digits:6
end

module Graph = Semantics.Make (Domain)

let build ?max_states ?on_progress tpn =
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Concrete.build: net has symbolic times or frequencies");
  Tpan_obs.Trace.with_span "concrete.build" @@ fun sp ->
  let g = Graph.build ?max_states ?on_progress tpn in
  Tpan_obs.Trace.add_attr_int sp "states" (Graph.num_states g);
  Tpan_obs.Trace.add_attr_int sp "edges" (Graph.num_edges g);
  g

let total_delay edges = List.fold_left (fun acc (e : Graph.edge) -> Q.add acc e.delay) Q.zero edges

let to_dot (g : Graph.graph) =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escape s =
    String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c) (List.init (String.length s) (String.get s)))
  in
  pr "digraph \"%s TRG\" {\n" (escape (Net.name (Tpn.net g.tpn)));
  Array.iteri
    (fun i st ->
      let shape =
        match g.kinds.(i) with
        | Semantics.Decision -> "diamond"
        | Semantics.Advance -> "ellipse"
        | Semantics.Terminal -> "doublecircle"
      in
      let label = Format.asprintf "%d: %a" (i + 1) (Graph.pp_state g.tpn) st in
      pr "  s%d [shape=%s, label=\"%s\"];\n" i shape (escape label))
    g.states;
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : Graph.edge) ->
          let label =
            if Q.equal e.prob Q.one then Format.asprintf "%a" Domain.pp_time e.delay
            else Format.asprintf "%a (p=%a)" Domain.pp_time e.delay Domain.pp_prob e.prob
          in
          pr "  s%d -> s%d [label=\"%s\"];\n" e.src e.dst (escape label))
        edges)
    g.out;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
