(** The paper's Figure-3 successor procedure, generic over the time and
    probability domains.

    One implementation serves both analyses: instantiated with exact
    rationals it produces the concrete Timed Reachability Graph of Figure 4;
    instantiated with affine expressions ordered by the net's timing
    constraints (and rational-function probabilities) it produces the
    Symbolic Timed Reachability Graph of Figure 6. *)

module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking

(** What a domain must provide. All operations receive the {!Tpn.t} so that
    symbolic instances can consult its constraint system. *)
module type DOMAIN = sig
  type time
  type prob

  val enabling_time : Tpn.t -> Net.trans -> time
  val firing_time : Tpn.t -> Net.trans -> time

  val zero : time

  val is_zero : time -> bool
  (** Structural test; states are kept normalized so that semantically-zero
      entries are structurally zero. *)

  val add : time -> time -> time
  val sub : time -> time -> time

  val normalize : Tpn.t -> time -> time
  (** Canonicalize (e.g. collapse an expression entailed to equal 0). *)

  val compare_time : Tpn.t -> time -> time -> [ `Lt | `Eq | `Gt ]
  (** Total comparison. Symbolic domains raise when the constraints cannot
      decide (see {!Symbolic.Insufficient}). *)

  val justify : Tpn.t -> smaller:time -> larger:time -> string list
  (** Constraint labels proving [smaller ≤ larger] — the Figure-7 audit
      trail. Returns [[]] when the comparison needs no constraints (e.g.
      concrete values). *)

  val time_equal : time -> time -> bool
  val time_hash : time -> int
  val pp_time : Format.formatter -> time -> unit

  val prob_one : prob
  val prob_mul : prob -> prob -> prob

  val prob_of_choice : Tpn.t -> chosen:Net.trans -> among:Net.trans list -> prob
  (** [f(chosen) / Σ f(t), t ∈ among] — the paper's branching probability.
      [among] lists the positive-frequency firable members of one conflict
      set (or the single zero-frequency one when it is alone). *)

  val prob_equal : prob -> prob -> bool
  val pp_prob : Format.formatter -> prob -> unit
end

type state_kind =
  | Decision  (** ≥ 1 firable transition; successors are instantaneous *)
  | Advance  (** no firable transition, time elapses to the next event *)
  | Terminal  (** nothing enabled, nothing firing *)

(** Graph data is polymorphic in the time and probability representations so
    that downstream analyses (decision graphs, measures) are written once
    for both the concrete and the symbolic instantiation. *)

type 'time state = {
  marking : Marking.t;
  ret : 'time array;  (** remaining enabling time per transition *)
  rft : 'time array;  (** remaining firing time per transition *)
}

type ('time, 'prob) edge = {
  src : int;
  dst : int;
  delay : 'time;
  prob : 'prob;
  fired : Net.trans list;  (** transitions that began firing (selector) *)
  completed : Net.trans list;  (** transitions whose firing finished *)
  justification : string list;
      (** constraint labels that resolved this edge's minimum (Figure 7) *)
}

type ('time, 'prob) graph = {
  tpn : Tpn.t;
  states : 'time state array;  (** index 0 is the initial state *)
  out : ('time, 'prob) edge list array;
  kinds : state_kind array;
}

val graph_num_states : _ graph -> int
val graph_num_edges : _ graph -> int

val graph_decision_states : _ graph -> int list
val graph_terminal_states : _ graph -> int list

val branching_states : _ graph -> int list
(** States with more than one successor: the nodes the paper keeps in the
    decision graph (its Figure 5 "decision nodes" 3 and 11). *)

module Make (D : DOMAIN) : sig
  type nonrec state = D.time state
  type nonrec edge = (D.time, D.prob) edge
  type nonrec graph = (D.time, D.prob) graph

  type edge_data = {
    e_delay : D.time;
    e_prob : D.prob;
    e_fired : Net.trans list;
    e_completed : Net.trans list;
    e_justification : string list;
  }

  val initial_state : Tpn.t -> state

  val successors : Tpn.t -> state -> (edge_data * state) list
  (** Raw successor computation (Figure 3); [edge_data] lacks indices. *)

  val build : ?max_states:int -> ?on_progress:(int -> unit) -> Tpn.t -> graph
  (** Full graph by BFS with state deduplication (default limit 100_000).
      [on_progress] is called with the running state count after each
      fresh state is interned (throttle with {!Tpan_obs.Progress.every}).
      @raise Tpn.Unsupported on nets violating the paper's assumptions
      @raise Tpan_petri.Reachability.State_limit when the budget is hit *)

  val kind_of_state : Tpn.t -> state -> state_kind
  val decision_states : graph -> int list
  val terminal_states : graph -> int list
  val num_states : graph -> int
  val num_edges : graph -> int

  val state_equal : state -> state -> bool
  val pp_state : Tpn.t -> Format.formatter -> state -> unit
end
