(** Timed Petri Nets: [Γ = (P, T, I, O, E, F, μ₀)] plus conflict-set firing
    frequencies (paper §1).

    Each transition carries an enabling time [E(t)] (how long it must stay
    continuously enabled before it {e must} begin firing — the timeout
    mechanism), a firing time [F(t)] (tokens are absorbed at firing start and
    produced [F(t)] later), and a relative firing frequency used to resolve
    conflicts probabilistically. Times and frequencies may be concrete
    rationals or symbolic variables; symbolic nets additionally carry the
    timing-constraint system that makes their analysis possible (§3). *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net

type time_spec =
  | Fixed of Q.t  (** a known delay; must be ≥ 0 *)
  | Sym of Tpan_symbolic.Var.t  (** an unknown delay, implicitly ≥ 0 *)

type freq_spec =
  | Freq of Q.t
      (** relative firing frequency; [0] means "only fires if nothing else in
          its conflict set is firable" (priority to the others) *)
  | Freq_sym of Tpan_symbolic.Var.t  (** unknown, assumed > 0 *)

type spec = { enabling : time_spec; firing : time_spec; frequency : freq_spec }

val spec :
  ?enabling:time_spec -> ?firing:time_spec -> ?frequency:freq_spec -> unit -> spec
(** Defaults: [enabling = Fixed 0], [firing = Fixed 0], [frequency = Freq 1]. *)

val fixed : Q.t -> time_spec
val fixed_ms : string -> time_spec
(** [fixed_ms "106.7"] — decimal shorthand. *)

val sym_enabling : string -> time_spec
(** [sym_enabling "t3"] is the symbol [E(t3)]. *)

val sym_firing : string -> time_spec

type t

exception Unsupported of string
(** The net violates a modelling assumption of the paper: overlapping
    manual conflict sets, a decision between several zero-frequency
    transitions, or (detected during graph construction) a transition that
    does not disable itself/its conflict set when it fires. *)

val make :
  ?constraints:Tpan_symbolic.Constraints.t ->
  ?conflict_sets:(string list * Q.t list) list ->
  Net.t ->
  (string * spec) list ->
  t
(** [make net specs] attaches timing to a net. Every transition of [net]
    must appear exactly once in [specs] (keyed by transition name).

    Conflict sets are computed as the connected components of the structural
    conflict relation [I(ti) ∩ I(tj) ≠ ∅]; the optional [conflict_sets]
    argument only {e overrides frequencies} as a convenience and must agree
    with the structural partition.

    @raise Unsupported or [Invalid_argument] on inconsistent input. *)

(** {1 Accessors} *)

val net : t -> Net.t
val constraints : t -> Tpan_symbolic.Constraints.t

val oracle : t -> Tpan_symbolic.Oracle.t
(** The net's memoizing constraint oracle, built lazily (once) from
    {!constraints}. All symbolic ordering queries should go through it:
    verdicts agree with the direct {!Tpan_symbolic.Constraints} procedures
    but preprocessing, the witness-point filter and the verdict memo table
    make repeated queries cheap. Shared by nets derived with
    {!bind_times}. *)

val enabling : t -> Net.trans -> time_spec
val firing : t -> Net.trans -> time_spec
val frequency : t -> Net.trans -> freq_spec

val enabling_expr : t -> Net.trans -> Tpan_symbolic.Linexpr.t
val firing_expr : t -> Net.trans -> Tpan_symbolic.Linexpr.t

val enabling_q : t -> Net.trans -> Q.t
(** @raise Unsupported if symbolic. *)

val firing_q : t -> Net.trans -> Q.t

val frequency_q : t -> Net.trans -> Q.t
val frequency_poly : t -> Net.trans -> Tpan_symbolic.Poly.t

val is_zero_frequency : t -> Net.trans -> bool
(** True only for [Freq 0]; symbolic frequencies are assumed positive. *)

val is_concrete : t -> bool
(** All times and frequencies fixed. *)

val conflict_set_of : t -> Net.trans -> int
val conflict_sets : t -> Net.trans list array
(** The partition into conflict sets (singletons included). *)

val time_vars : t -> Tpan_symbolic.Var.t list
(** All symbolic time variables appearing in the net, in transition order. *)

val bind_times : t -> (string * Q.t) list -> t
(** Substitute concrete values for named symbolic times/frequencies
    (["E(t3)", "F(t5)", "f(t4)"] keys), e.g. to specialize a symbolic net for
    simulation. Constraints are checked against the binding when it makes the
    net fully concrete.
    @raise Unsupported if a binding violates the declared constraints. *)

val pp : Format.formatter -> t -> unit
