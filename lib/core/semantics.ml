module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Metrics = Tpan_obs.Metrics

(* Shared across Make instances: one TRG is built per run, and the profile
   view wants concrete and symbolic builds under the same names. *)
let m_states = Metrics.counter "core.semantics.states_interned"
let m_edges = Metrics.counter "core.semantics.edges"
let m_frontier_peak = Metrics.gauge "core.semantics.frontier_peak"
let h_successors = Metrics.histogram "core.semantics.successor_seconds"

module type DOMAIN = sig
  type time
  type prob

  val enabling_time : Tpn.t -> Net.trans -> time
  val firing_time : Tpn.t -> Net.trans -> time
  val zero : time
  val is_zero : time -> bool
  val add : time -> time -> time
  val sub : time -> time -> time
  val normalize : Tpn.t -> time -> time
  val compare_time : Tpn.t -> time -> time -> [ `Lt | `Eq | `Gt ]
  val justify : Tpn.t -> smaller:time -> larger:time -> string list
  val time_equal : time -> time -> bool
  val time_hash : time -> int
  val pp_time : Format.formatter -> time -> unit
  val prob_one : prob
  val prob_mul : prob -> prob -> prob
  val prob_of_choice : Tpn.t -> chosen:Net.trans -> among:Net.trans list -> prob
  val prob_equal : prob -> prob -> bool
  val pp_prob : Format.formatter -> prob -> unit
end

type state_kind = Decision | Advance | Terminal

type 'time state = { marking : Marking.t; ret : 'time array; rft : 'time array }

type ('time, 'prob) edge = {
  src : int;
  dst : int;
  delay : 'time;
  prob : 'prob;
  fired : Net.trans list;
  completed : Net.trans list;
  justification : string list;
}

type ('time, 'prob) graph = {
  tpn : Tpn.t;
  states : 'time state array;
  out : ('time, 'prob) edge list array;
  kinds : state_kind array;
}

let graph_num_states g = Array.length g.states
let graph_num_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.out

let graph_decision_states g =
  List.filter (fun i -> g.kinds.(i) = Decision) (List.init (Array.length g.states) Fun.id)

let graph_terminal_states g =
  List.filter (fun i -> g.kinds.(i) = Terminal) (List.init (Array.length g.states) Fun.id)

let branching_states g =
  List.filter
    (fun i -> List.length g.out.(i) > 1)
    (List.init (Array.length g.states) Fun.id)

module Make (D : DOMAIN) = struct
  type nonrec state = D.time state
  type nonrec edge = (D.time, D.prob) edge
  type nonrec graph = (D.time, D.prob) graph

  type edge_data = {
    e_delay : D.time;
    e_prob : D.prob;
    e_fired : Net.trans list;
    e_completed : Net.trans list;
    e_justification : string list;
  }

  let state_equal a b =
    Marking.equal a.marking b.marking
    && Array.for_all2 D.time_equal a.ret b.ret
    && Array.for_all2 D.time_equal a.rft b.rft

  let state_hash s =
    let h = ref (Marking.hash s.marking) in
    Array.iter (fun t -> h := (!h * 31) + D.time_hash t) s.ret;
    Array.iter (fun t -> h := (!h * 31) + D.time_hash t) s.rft;
    !h land max_int

  (* A transition is firable when it is enabled and its enabling time has
     fully elapsed. Single-server check: it must not still be firing. *)
  let firable tpn st t =
    Marking.enabled (Tpn.net tpn) st.marking t && D.is_zero st.ret.(t)

  let check_single_server tpn st t =
    if not (D.is_zero st.rft.(t)) then
      raise
        (Tpn.Unsupported
           (Printf.sprintf
              "transition %s becomes firable while already firing (multiple simultaneous firings are outside the model)"
              (Net.trans_name (Tpn.net tpn) t)))

  let initial_state tpn =
    let net = Tpn.net tpn in
    let nt = Net.num_transitions net in
    let marking = Marking.of_net net in
    let ret = Array.make nt D.zero in
    let rft = Array.make nt D.zero in
    List.iter
      (fun t ->
        if Marking.enabled net marking t then
          ret.(t) <- D.normalize tpn (D.enabling_time tpn t))
      (Net.transitions net);
    { marking; ret; rft }

  let kind_of_state tpn st =
    let net = Tpn.net tpn in
    if List.exists (fun t -> firable tpn st t) (Net.transitions net) then Decision
    else if Array.exists (fun x -> not (D.is_zero x)) st.ret
            || Array.exists (fun x -> not (D.is_zero x)) st.rft
    then Advance
    else Terminal

  (* --- Decision step: fire one transition from each firable conflict set
     (the paper's selectors = cross product of firable conflict sets). --- *)

  let selectors tpn firables =
    (* Group firable transitions by conflict set, in set order. *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun t ->
        let cs = Tpn.conflict_set_of tpn t in
        Hashtbl.replace groups cs (t :: (Option.value ~default:[] (Hashtbl.find_opt groups cs))))
      (List.rev firables);
    let sets = Hashtbl.fold (fun cs ts acc -> (cs, ts) :: acc) groups [] in
    let sets = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) sets in
    (* Within a set, zero-frequency transitions fire only when no
       positive-frequency member is firable. *)
    let candidates_of (_, members) =
      let pos = List.filter (fun t -> not (Tpn.is_zero_frequency tpn t)) members in
      match (pos, members) with
      | _ :: _, _ -> pos
      | [], [ t ] -> [ t ]
      | [], _ ->
        raise
          (Tpn.Unsupported
             (Printf.sprintf
                "decision between several zero-frequency transitions {%s}: probabilities undefined"
                (String.concat ", "
                   (List.map (Net.trans_name (Tpn.net tpn)) members))))
    in
    let choice_sets = List.map candidates_of sets in
    (* Cross product, with the branching probability of each choice. *)
    let rec cross = function
      | [] -> [ ([], D.prob_one) ]
      | among :: rest ->
        let tails = cross rest in
        List.concat_map
          (fun chosen ->
            let p = D.prob_of_choice tpn ~chosen ~among in
            List.map (fun (sel, q) -> (chosen :: sel, D.prob_mul p q)) tails)
          among
    in
    cross choice_sets

  let decision_successors tpn st firables =
    let net = Tpn.net tpn in
    let nt = Net.num_transitions net in
    List.map
      (fun (sel, prob) ->
        List.iter (fun t -> check_single_server tpn st t) sel;
        (* absorb input tokens of every selected transition *)
        let marking =
          List.fold_left (fun m t -> Marking.consume net m t) st.marking sel
        in
        (* The paper requires firing to disable the whole conflict set —
           in particular the fired transition itself. *)
        List.iter
          (fun t ->
            if Marking.enabled net marking t then
              raise
                (Tpn.Unsupported
                   (Printf.sprintf
                      "firing %s does not disable it: the net allows multiple simultaneous firings"
                      (Net.trans_name net t))))
          sel;
        let ret = Array.copy st.ret and rft = Array.copy st.rft in
        List.iter (fun t -> rft.(t) <- D.normalize tpn (D.firing_time tpn t); ret.(t) <- D.zero) sel;
        (* transitions disabled by the token absorption lose their RET
           (their continuous-enabling interval is broken) *)
        for t = 0 to nt - 1 do
          if (not (D.is_zero ret.(t))) && not (Marking.enabled net marking t) then
            ret.(t) <- D.zero
        done;
        (* F(t) = 0 transitions complete instantaneously: produce their
           outputs in the same step. *)
        let instant = List.filter (fun t -> D.is_zero rft.(t)) sel in
        let marking' =
          List.fold_left (fun m t -> Marking.produce net m t) marking instant
        in
        if instant <> [] then
          for t = 0 to nt - 1 do
            if Marking.enabled net marking' t && not (Marking.enabled net marking t) then begin
              check_single_server tpn { marking = marking'; ret; rft } t;
              ret.(t) <- D.normalize tpn (D.enabling_time tpn t)
            end
          done;
        let st' = { marking = marking'; ret; rft } in
        ( { e_delay = D.zero; e_prob = prob; e_fired = sel; e_completed = instant;
            e_justification = [] },
          st' ))
      (selectors tpn firables)

  (* --- Time advance: let the smallest non-zero RET/RFT elapse. --- *)

  let advance_successor tpn st =
    let net = Tpn.net tpn in
    let nt = Net.num_transitions net in
    (* Collect active entries. *)
    let active = ref [] in
    for t = nt - 1 downto 0 do
      if not (D.is_zero st.rft.(t)) then active := `Rft t :: !active;
      if not (D.is_zero st.ret.(t)) then active := `Ret t :: !active
    done;
    match !active with
    | [] -> None
    | first :: rest ->
      let value = function `Ret t -> st.ret.(t) | `Rft t -> st.rft.(t) in
      (* Find the minimum entry; remember which entries tie with it. *)
      let tmin =
        List.fold_left
          (fun acc e ->
            match D.compare_time tpn (value e) acc with `Lt -> value e | `Eq | `Gt -> acc)
          (value first) rest
      in
      (* Audit: justification that tmin is ≤ every other distinct entry. *)
      let justification =
        List.sort_uniq Stdlib.compare
          (List.concat_map
             (fun e ->
               if D.time_equal (value e) tmin then []
               else D.justify tpn ~smaller:tmin ~larger:(value e))
             (first :: rest))
      in
      let completes = Array.make nt false in
      let ret = Array.make nt D.zero and rft = Array.make nt D.zero in
      for t = 0 to nt - 1 do
        if not (D.is_zero st.rft.(t)) then begin
          match D.compare_time tpn st.rft.(t) tmin with
          | `Eq -> completes.(t) <- true (* rft reaches zero *)
          | `Gt -> rft.(t) <- D.normalize tpn (D.sub st.rft.(t) tmin)
          | `Lt -> assert false
        end;
        if not (D.is_zero st.ret.(t)) then begin
          match D.compare_time tpn st.ret.(t) tmin with
          | `Eq -> () (* enabling period over: ret becomes zero, firable next *)
          | `Gt -> ret.(t) <- D.normalize tpn (D.sub st.ret.(t) tmin)
          | `Lt -> assert false
        end
      done;
      (* produce output tokens of completing transitions *)
      let marking =
        List.fold_left
          (fun m t -> if completes.(t) then Marking.produce net m t else m)
          st.marking (Net.transitions net)
      in
      (* newly enabled transitions start their enabling period *)
      for t = 0 to nt - 1 do
        if Marking.enabled net marking t && not (Marking.enabled net st.marking t) then begin
          if not (D.is_zero rft.(t)) then
            raise
              (Tpn.Unsupported
                 (Printf.sprintf "transition %s becomes enabled while still firing"
                    (Net.trans_name net t)));
          ret.(t) <- D.normalize tpn (D.enabling_time tpn t)
        end
      done;
      let completed = List.filter (fun t -> completes.(t)) (Net.transitions net) in
      let st' = { marking; ret; rft } in
      Some
        ( { e_delay = tmin; e_prob = D.prob_one; e_fired = []; e_completed = completed;
            e_justification = justification },
          st' )

  let successors tpn st =
    let net = Tpn.net tpn in
    let firables = List.filter (fun t -> firable tpn st t) (Net.transitions net) in
    if firables <> [] then decision_successors tpn st firables
    else match advance_successor tpn st with None -> [] | Some s -> [ s ]

  (* --- Graph construction: BFS with state interning. --- *)

  module ST = Hashtbl.Make (struct
    type t = state

    let equal = state_equal
    let hash = state_hash
  end)

  let build ?(max_states = 100_000) ?(on_progress = fun _ -> ()) tpn =
    let index = ST.create 256 in
    let states = ref [] and count = ref 0 in
    let intern st =
      match ST.find_opt index st with
      | Some i -> (i, false)
      | None ->
        if !count >= max_states then raise (Tpan_petri.Reachability.State_limit max_states);
        let i = !count in
        incr count;
        ST.add index st i;
        states := st :: !states;
        Metrics.Counter.incr m_states;
        on_progress !count;
        (i, true)
    in
    let s0 = initial_state tpn in
    let i0, _ = intern s0 in
    let queue = Queue.create () in
    Queue.add (i0, s0) queue;
    let out = Hashtbl.create 256 in
    while not (Queue.is_empty queue) do
      Tpan_obs.Cancel.checkpoint ();
      Metrics.Gauge.set_max m_frontier_peak (float_of_int (Queue.length queue));
      let i, st = Queue.take queue in
      let succs =
        if Metrics.timing_on () then Metrics.time h_successors (fun () -> successors tpn st)
        else successors tpn st
      in
      let edges =
        List.map
          (fun (d, st') ->
            let j, fresh = intern st' in
            if fresh then Queue.add (j, st') queue;
            Metrics.Counter.incr m_edges;
            { src = i; dst = j; delay = d.e_delay; prob = d.e_prob; fired = d.e_fired;
              completed = d.e_completed; justification = d.e_justification })
          succs
      in
      Hashtbl.replace out i edges
    done;
    let states = Array.of_list (List.rev !states) in
    let out = Array.init (Array.length states) (fun i -> Option.value ~default:[] (Hashtbl.find_opt out i)) in
    let kinds = Array.map (kind_of_state tpn) states in
    { tpn; states; out; kinds }

  let decision_states = graph_decision_states
  let terminal_states = graph_terminal_states
  let num_states = graph_num_states
  let num_edges = graph_num_edges

  let pp_state tpn fmt st =
    let net = Tpn.net tpn in
    Format.fprintf fmt "@[<h>%a" (Marking.pp net) st.marking;
    let pp_vec label vec =
      let entries =
        List.filter_map
          (fun t ->
            if D.is_zero vec.(t) then None
            else Some (Format.asprintf "%s=%a" (Net.trans_name net t) D.pp_time vec.(t)))
          (Net.transitions net)
      in
      if entries <> [] then Format.fprintf fmt " %s[%s]" label (String.concat ", " entries)
    in
    pp_vec "RET" st.ret;
    pp_vec "RFT" st.rft;
    Format.fprintf fmt "@]"
end
