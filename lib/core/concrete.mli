(** Concrete Timed Reachability Graphs (paper §2, Figure 4): exact rational
    delays, exact rational branching probabilities.

    Requires a fully concrete {!Tpn.t} ({!Tpn.is_concrete}). *)

module Q = Tpan_mathkit.Q

module Domain :
  Semantics.DOMAIN with type time = Q.t and type prob = Q.t

module Graph : module type of Semantics.Make (Domain)

val build : ?max_states:int -> ?on_progress:(int -> unit) -> Tpn.t -> Graph.graph
(** Builds under a ["concrete.build"] trace span; [on_progress] as in
    {!Semantics.Make.build}.
    @raise Tpn.Unsupported if the net has symbolic times/frequencies. *)

val total_delay : Graph.edge list -> Q.t
(** Sum of edge delays along a path. *)

val to_dot : Graph.graph -> string
(** DOT rendering of the timed reachability graph; decision states are
    drawn as diamonds, edges labelled with delay (and probability when
    not 1). *)
