(** Symbolic Timed Reachability Graphs (paper §3, Figure 6): delays are
    affine expressions in the net's time symbols, branching probabilities
    are rational functions of the frequency symbols, and minima are decided
    by the net's timing-constraint system.

    When the constraints cannot order two remaining times, construction
    stops with {!Insufficient}, carrying the exact comparison that failed
    and a suggested constraint — the interactive-tool behaviour the paper
    proposes ("an automated tool could be designed to prompt designers for
    timing constraints at the necessary points"). *)

module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun

exception Insufficient of { lhs : Lin.t; rhs : Lin.t; hint : string }
(** Raised when the timing constraints do not determine the order of two
    non-zero remaining times. [hint] is {!Tpan_symbolic.Constraints.suggest}
    output. *)

module Domain :
  Semantics.DOMAIN with type time = Lin.t and type prob = Rf.t

module Graph : module type of Semantics.Make (Domain)

val build : ?max_states:int -> ?on_progress:(int -> unit) -> Tpn.t -> Graph.graph
(** Works for any net (concrete specs become constant expressions). Builds
    under a ["symbolic.build"] trace span; [on_progress] as in
    {!Semantics.Make.build}.
    @raise Insufficient when the constraint system is too weak
    @raise Tpn.Unsupported on nets violating the modelling assumptions *)

val total_delay : Graph.edge list -> Lin.t

val constraint_audit : Graph.graph -> (int * int * string list) list
(** Per-edge constraint usage [(src, dst, labels)] for edges whose minimum
    needed at least one declared constraint — reproduces the paper's
    Figure 7. *)

val to_dot : Graph.graph -> string
