module Lin = Tpan_symbolic.Linexpr

type t =
  | Unsupported of string
  | Insufficient of { lhs : string; rhs : string; hint : string }
  | State_limit of int
  | Unsolvable of string
  | Deterministic_cycle of int list
  | Parse_error of { line : int; col : int; msg : string }
  | Io_error of string
  | Invalid_input of string
  | Deadline_exceeded of string

let to_string = function
  | Unsupported msg -> msg
  | Insufficient { lhs; rhs; hint } ->
    Printf.sprintf "insufficient timing constraints: cannot order %s and %s\n  %s" lhs rhs hint
  | State_limit n ->
    Printf.sprintf "state budget exhausted: exploration truncated at %d states (raise --max-states)"
      n
  | Unsolvable msg -> Printf.sprintf "rate equations unsolvable: %s" msg
  | Deterministic_cycle _ ->
    "the system is deterministic from some decision node on; use the cycle analysis"
  | Parse_error { line; col; msg } ->
    Printf.sprintf "parse error at line %d, column %d: %s" line col msg
  | Io_error msg -> msg
  | Invalid_input msg -> msg
  | Deadline_exceeded why -> Printf.sprintf "analysis aborted: %s" why

let exit_code = function
  | Unsupported _ | Parse_error _ | Io_error _ | Invalid_input _ -> 2
  | Insufficient _ -> 3
  | Unsolvable _ | Deterministic_cycle _ -> 4
  | State_limit _ -> 5
  | Deadline_exceeded _ -> 6

let of_exn = function
  | Tpn.Unsupported msg -> Some (Unsupported msg)
  | Symbolic.Insufficient { lhs; rhs; hint } ->
    Some
      (Insufficient
         {
           lhs = Format.asprintf "%a" Lin.pp lhs;
           rhs = Format.asprintf "%a" Lin.pp rhs;
           hint;
         })
  | Tpan_petri.Reachability.State_limit n -> Some (State_limit n)
  | Tpan_obs.Cancel.Cancelled reason ->
    Some (Deadline_exceeded (Tpan_obs.Cancel.reason_to_string reason))
  | Sys_error msg -> Some (Io_error msg)
  | _ -> None

let pp fmt e = Format.pp_print_string fmt (to_string e)
