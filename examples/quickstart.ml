(* Quickstart: model a protocol and get a throughput number through the
   Tpan.Analysis facade — build a net, call analyze, read the report.
   Every failure mode comes back as a value (Tpan.Error.t), so the example
   has no exception handling.

   Run with: dune exec examples/quickstart.exe *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn

let () =
  (* 1. Describe the net: a sender that transmits and waits for an ack over
     a lossy link, with a retransmission timeout. *)
  let b = Net.builder "mini" in
  let ready = Net.add_place b ~init:1 "ready" in
  let in_flight = Net.add_place b "in_flight" in
  let awaiting = Net.add_place b "awaiting" in
  let acked = Net.add_place b "acked" in
  let add name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  add "send" [ (ready, 1) ] [ (in_flight, 1); (awaiting, 1) ];
  add "lose" [ (in_flight, 1) ] [];
  add "deliver" [ (in_flight, 1) ] [ (acked, 1) ];
  add "done_" [ (acked, 1); (awaiting, 1) ] [ (ready, 1) ];
  add "timeout" [ (awaiting, 1) ] [ (ready, 1) ];
  let net = Net.build b in

  (* 2. Attach timing: E = enabling time (timeouts), F = firing time
     (duration), freq = conflict-resolution weight. *)
  let ms = Q.of_int in
  let tpn =
    Tpn.make net
      [
        ("send", Tpn.spec ~firing:(Tpn.Fixed (ms 2)) ());
        ("lose", Tpn.spec ~firing:(Tpn.Fixed (ms 50)) ~frequency:(Tpn.Freq (Q.of_ints 1 10)) ());
        ("deliver", Tpn.spec ~firing:(Tpn.Fixed (ms 50)) ~frequency:(Tpn.Freq (Q.of_ints 9 10)) ());
        ("done_", Tpn.spec ~firing:(Tpn.Fixed (ms 1)) ());
        (* the timeout must outlast one round trip; freq 0 = the ack wins ties *)
        ("timeout", Tpn.spec ~enabling:(Tpn.Fixed (ms 200)) ~firing:(Tpn.Fixed (ms 2))
             ~frequency:(Tpn.Freq Q.zero) ());
      ]
  in

  (* 3. Analyze through the facade: one call runs timed reachability,
     decision-graph collapse and the rate solve. *)
  (match Tpan.Analysis.(analyze ~throughputs:[ "done_" ] tpn) with
   | Error e ->
     Format.printf "analysis failed: %s@." (Tpan.Error.to_string e)
   | Ok report ->
     Format.printf "reachability graph: %d states@." report.Tpan.Analysis.states;
     let throughput = List.assoc "done_" report.Tpan.Analysis.throughputs in
     Format.printf "throughput: %a messages per ms (%.2f msg/s)@."
       (Q.pp_decimal ~digits:6) throughput
       (Q.to_float throughput *. 1000.);
     Format.printf "mean time per message: %a ms@." (Q.pp_decimal ~digits:3)
       (Q.inv throughput));

  (* 4. Cross-check by simulation. *)
  let stats = Tpan_sim.Simulator.run ~seed:7 ~horizon:(ms 1_000_000) tpn in
  Format.printf "simulated:  %.6f messages per ms@."
    (Tpan_sim.Simulator.throughput stats (Net.trans_of_name net "done_"))
